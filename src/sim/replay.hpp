// Operational replay of solver output.
//
// The solvers emit space-time Schedules; the replay engine "executes" them
// against a simulated server cluster: it re-checks causal feasibility,
// classifies how each service point was satisfied, and aggregates the
// operational metrics (transfers on the wire, cache occupancy per server,
// peak concurrent replicas) that a deployment would observe.  This is the
// bridge between the cost abstraction and a running system, and the
// integration tests drive whole traces through it.
#pragma once

#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "core/flow.hpp"
#include "core/schedule.hpp"

namespace dpg {

/// One flow and the schedule chosen for it.
struct FlowPlan {
  Flow flow;
  Schedule schedule;
  std::string label;  // e.g. "item 3" or "package {1,2}"
};

/// How a service point obtained its copy.
enum class ServiceKind {
  kCacheHit,        // inside a cache segment on its own server
  kTransferArrival, // delivered by a transfer at the request instant
};

struct ServiceRecord {
  std::size_t plan_index = 0;
  ServerId server = 0;
  Time time = 0.0;
  ServiceKind kind = ServiceKind::kCacheHit;
};

struct ReplayMetrics {
  bool feasible = true;
  std::string issue;  // first infeasibility, with the plan label

  std::size_t service_count = 0;
  std::size_t cache_hits = 0;
  std::size_t transfer_arrivals = 0;

  std::size_t transfer_count = 0;       // wire transfers across all plans
  Time total_cache_time = 0.0;          // per-flow union cache time summed
  std::vector<Time> per_server_cache_time;
  std::size_t peak_concurrent_copies = 0;  // across all flows and servers
  /// Peak replicas resident simultaneously on each server — the cache
  /// capacity a deployment would need to provision (the paper assumes
  /// unbounded capacity; this measures what "unbounded" actually meant).
  std::vector<std::size_t> per_server_peak_copies;

  Cost total_cost = 0.0;  // discounted, summed over plans
  std::vector<ServiceRecord> services;

  [[nodiscard]] double cache_hit_ratio() const noexcept {
    return service_count == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(service_count);
  }
};

/// Replays every plan. Stops classifying at the first infeasible plan but
/// still reports which one failed.
[[nodiscard]] ReplayMetrics replay_plans(const std::vector<FlowPlan>& plans,
                                         const CostModel& model,
                                         std::size_t server_count);

}  // namespace dpg
