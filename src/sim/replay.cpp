#include "sim/replay.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace dpg {

ReplayMetrics replay_plans(const std::vector<FlowPlan>& plans,
                           const CostModel& model, std::size_t server_count) {
  model.validate();
  ReplayMetrics metrics;
  metrics.per_server_cache_time.assign(server_count, 0.0);
  metrics.per_server_peak_copies.assign(server_count, 0);

  // Sweep events for peak concurrent copies: +1 at segment begin, −1 at end,
  // across every plan (each plan's segments are one replica each).
  std::vector<std::pair<Time, int>> copy_events;
  std::vector<std::vector<std::pair<Time, int>>> per_server_events(server_count);

  for (std::size_t p = 0; p < plans.size(); ++p) {
    const FlowPlan& plan = plans[p];
    const ValidationResult validation = plan.schedule.validate(plan.flow);
    if (!validation.ok) {
      metrics.feasible = false;
      metrics.issue = plan.label.empty()
                          ? validation.message
                          : plan.label + ": " + validation.message;
      return metrics;
    }

    metrics.transfer_count += plan.schedule.transfers().size();
    metrics.total_cache_time += plan.schedule.total_cache_time();
    metrics.total_cost += plan.schedule.cost(model);
    for (const CacheSegment& seg : plan.schedule.segments()) {
      require(seg.server < server_count, "replay: segment server out of range");
      metrics.per_server_cache_time[seg.server] += seg.end - seg.begin;
      copy_events.emplace_back(seg.begin, +1);
      copy_events.emplace_back(seg.end, -1);
      per_server_events[seg.server].emplace_back(seg.begin, +1);
      per_server_events[seg.server].emplace_back(seg.end, -1);
    }

    // Classify each service point: covered by a segment interior (cache
    // hit) or only by a transfer arrival at that instant.
    for (const ServicePoint& point : plan.flow.points) {
      ServiceRecord record;
      record.plan_index = p;
      record.server = point.server;
      record.time = point.time;
      bool on_segment = false;
      for (const CacheSegment& seg : plan.schedule.segments()) {
        if (seg.server == point.server && seg.begin <= point.time &&
            point.time <= seg.end) {
          // A segment *starting* exactly at the request that a transfer
          // just delivered still counts as a transfer arrival.
          if (seg.begin < point.time) {
            on_segment = true;
            break;
          }
        }
      }
      record.kind = on_segment ? ServiceKind::kCacheHit
                               : ServiceKind::kTransferArrival;
      ++metrics.service_count;
      if (on_segment) {
        ++metrics.cache_hits;
      } else {
        ++metrics.transfer_arrivals;
      }
      metrics.services.push_back(record);
    }
  }

  // Peak concurrent replicas: close segments before opening new ones at the
  // same instant (a replica dropped at t and another created at t never
  // coexist).
  std::sort(copy_events.begin(), copy_events.end(),
            [](const std::pair<Time, int>& a, const std::pair<Time, int>& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  int live = 0;
  for (const auto& [time, delta] : copy_events) {
    live += delta;
    metrics.peak_concurrent_copies = std::max(
        metrics.peak_concurrent_copies, static_cast<std::size_t>(std::max(0, live)));
  }
  for (std::size_t s = 0; s < server_count; ++s) {
    auto& events = per_server_events[s];
    std::sort(events.begin(), events.end(),
              [](const std::pair<Time, int>& a, const std::pair<Time, int>& b) {
                if (a.first != b.first) return a.first < b.first;
                return a.second < b.second;
              });
    int resident = 0;
    for (const auto& [time, delta] : events) {
      resident += delta;
      metrics.per_server_peak_copies[s] =
          std::max(metrics.per_server_peak_copies[s],
                   static_cast<std::size_t>(std::max(0, resident)));
    }
  }
  return metrics;
}

}  // namespace dpg
