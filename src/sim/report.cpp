#include "sim/report.hpp"

#include <algorithm>
#include <numeric>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace dpg {

std::string render_replay_report(const ReplayMetrics& metrics,
                                 std::size_t top_servers) {
  std::string out;
  if (!metrics.feasible) {
    return "REPLAY INFEASIBLE: " + metrics.issue + "\n";
  }
  out += "replay: feasible\n";
  out += "  total cost        : " + format_fixed(metrics.total_cost, 2) + "\n";
  out += "  services          : " + std::to_string(metrics.service_count) +
         " (" + std::to_string(metrics.cache_hits) + " cache hits, " +
         std::to_string(metrics.transfer_arrivals) + " transfer arrivals, " +
         "hit ratio " + format_fixed(metrics.cache_hit_ratio(), 3) + ")\n";
  out += "  wire transfers    : " + std::to_string(metrics.transfer_count) + "\n";
  out += "  cache time        : " + format_fixed(metrics.total_cache_time, 2) + "\n";
  out += "  peak replicas     : " + std::to_string(metrics.peak_concurrent_copies) + "\n";

  // Busiest servers by cache time.
  std::vector<std::size_t> order(metrics.per_server_cache_time.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&metrics](std::size_t a, std::size_t b) {
    return metrics.per_server_cache_time[a] > metrics.per_server_cache_time[b];
  });
  TextTable table({"server", "cache time", "peak replicas"});
  for (std::size_t i = 0; i < std::min(top_servers, order.size()); ++i) {
    const std::size_t s = order[i];
    if (metrics.per_server_cache_time[s] == 0.0) break;
    table.add_row({"s" + std::to_string(s),
                   format_fixed(metrics.per_server_cache_time[s], 2),
                   std::to_string(s < metrics.per_server_peak_copies.size()
                                      ? metrics.per_server_peak_copies[s]
                                      : 0)});
  }
  if (table.row_count() > 0) {
    out += "  busiest servers:\n";
    out += table.render();
  }
  return out;
}

}  // namespace dpg
