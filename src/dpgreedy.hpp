// dpgreedy.hpp — the library's single public include.
//
// One header covers everything an application needs to build, solve and
// inspect caching workloads:
//
//   * the engine: SolverRegistry dispatch by stable name, SolverConfig (a
//     fluent builder: `SolverConfig{}.threads(8).telemetry(true).seed(42)`),
//     the canonical RunReport and its renderers,
//   * trace I/O and workloads: CSV read/write, the synthetic generators,
//     descriptive stats, the taxi mobility simulator,
//   * schedule tooling: cost model, flows, schedules and their CSV/DOT
//     exports, plan replay,
//   * observability: metrics snapshots and Perfetto-loadable trace spans,
//   * the small util layer front ends lean on (args, RNG, logging, tables).
//
// Concrete solver internals (solver/*.hpp: DP recurrences, correlation
// structures, per-algorithm result structs) are deliberately NOT exported —
// algorithms are reached through the registry:
//
//   #include "dpgreedy.hpp"
//
//   dpg::RequestSequence trace = dpg::read_trace_file("trace.csv");
//   dpg::CostModel model{1.0, 2.0, 0.8};
//   dpg::RunReport report = dpg::builtin_registry().run(
//       "dp_greedy", trace, model, dpg::SolverConfig{}.threads(8));
//
// Harnesses that genuinely sweep solver internals (the figure/table
// reproductions) include bench/harness_solvers.hpp instead.
#pragma once

#include "core/cost_model.hpp"       // IWYU pragma: export
#include "core/flow.hpp"             // IWYU pragma: export
#include "core/request.hpp"          // IWYU pragma: export
#include "core/request_block.hpp"    // IWYU pragma: export
#include "core/schedule.hpp"         // IWYU pragma: export
#include "core/schedule_export.hpp"  // IWYU pragma: export
#include "core/types.hpp"            // IWYU pragma: export
#include "engine/registry.hpp"       // IWYU pragma: export
#include "engine/render.hpp"         // IWYU pragma: export
#include "engine/run_report.hpp"     // IWYU pragma: export
#include "engine/serve_config.hpp"   // IWYU pragma: export
#include "engine/serve_pipeline.hpp"  // IWYU pragma: export
#include "engine/sharded_serve.hpp"  // IWYU pragma: export
#include "engine/solver.hpp"         // IWYU pragma: export
#include "engine/streaming_engine.hpp"  // IWYU pragma: export
#include "mobility/simulator.hpp"    // IWYU pragma: export
#include "obs/exposition.hpp"        // IWYU pragma: export
#include "obs/metrics.hpp"           // IWYU pragma: export
#include "obs/scrape.hpp"            // IWYU pragma: export
#include "obs/trace.hpp"             // IWYU pragma: export
#include "parallel/mpmc_ring.hpp"    // IWYU pragma: export
#include "parallel/spsc_ring.hpp"    // IWYU pragma: export
#include "sim/replay.hpp"            // IWYU pragma: export
#include "trace/block_reader.hpp"    // IWYU pragma: export
#include "trace/dpt.hpp"             // IWYU pragma: export
#include "trace/dpt_stream_writer.hpp"  // IWYU pragma: export
#include "trace/shard_source.hpp"    // IWYU pragma: export
#include "trace/generators.hpp"      // IWYU pragma: export
#include "trace/io.hpp"              // IWYU pragma: export
#include "trace/stats.hpp"           // IWYU pragma: export
#include "trace/transforms.hpp"      // IWYU pragma: export
#include "util/args.hpp"             // IWYU pragma: export
#include "util/error.hpp"            // IWYU pragma: export
#include "util/log.hpp"              // IWYU pragma: export
#include "util/rng.hpp"              // IWYU pragma: export
#include "util/stats.hpp"            // IWYU pragma: export
#include "util/strings.hpp"          // IWYU pragma: export
#include "util/table.hpp"            // IWYU pragma: export
