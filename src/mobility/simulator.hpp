// The Shenzhen-taxi-trace substitute (DESIGN.md, substitution table):
// a fleet of hotspot-seeking taxis moving over a zoned city, each mapped to
// one data item; fleet partners co-issue requests with a per-pair
// probability, which is what gives item pairs their Jaccard similarities
// (Fig. 10) without any proprietary data.
#pragma once

#include <vector>

#include "core/request.hpp"
#include "mobility/taxi.hpp"

namespace dpg {

struct MobilityConfig {
  /// 10 × 5 = 50 zones — the paper's partition cardinality.
  std::size_t grid_width = 10;
  std::size_t grid_height = 5;
  std::size_t hotspot_count = 8;
  /// One item per taxi (the paper uses 10 taxis / 10 items).
  std::size_t taxi_count = 10;
  /// Simulated time horizon.
  double duration = 200.0;
  TaxiConfig taxi;
  /// Per-pair probability that a request by either partner includes both
  /// items.  Pair p couples taxis 2p and 2p+1.  Empty = a linear ramp from
  /// 0.1 to 0.9 across pairs (gives Fig. 10 its spread of similarities).
  std::vector<double> pair_co_access;
};

/// Runs the fleet and returns the request trace, ready for the solvers.
[[nodiscard]] RequestSequence simulate_mobility(const MobilityConfig& config,
                                                Rng& rng);

}  // namespace dpg
