#include "mobility/simulator.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace dpg {

RequestSequence simulate_mobility(const MobilityConfig& config, Rng& rng) {
  require(config.taxi_count >= 1, "mobility: need at least one taxi");
  require(config.duration > 0.0, "mobility: duration must be positive");
  const std::size_t pair_count = config.taxi_count / 2;
  std::vector<double> co_access = config.pair_co_access;
  if (co_access.empty() && pair_count > 0) {
    co_access.resize(pair_count);
    for (std::size_t p = 0; p < pair_count; ++p) {
      co_access[p] =
          pair_count == 1
              ? 0.5
              : 0.1 + 0.8 * static_cast<double>(p) /
                          static_cast<double>(pair_count - 1);
    }
  }
  require(co_access.size() >= pair_count,
          "mobility: pair_co_access must cover every taxi pair");

  CityGrid city(config.grid_width, config.grid_height, config.hotspot_count,
                rng);

  // Fleet: partners start from the same hotspot so their trajectories are
  // spatially correlated from the outset.
  std::vector<Taxi> fleet;
  fleet.reserve(config.taxi_count);
  for (std::size_t i = 0; i < config.taxi_count; ++i) {
    Position start;
    if (i % 2 == 1) {
      start = fleet[i - 1].position();
    } else {
      start = city.center_of(city.sample_hotspot(rng));
    }
    fleet.emplace_back(static_cast<ItemId>(i), start, config.taxi);
  }

  // Event-driven request emission: each taxi holds an exponential clock;
  // taxis advance lazily to their own request instants.
  struct Pending {
    Time time;
    std::size_t taxi;
    bool operator>(const Pending& other) const { return time > other.time; }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue;
  std::vector<Time> last_advance(config.taxi_count, 0.0);
  for (std::size_t i = 0; i < config.taxi_count; ++i) {
    queue.push(Pending{fleet[i].next_request_gap(rng), i});
  }

  SequenceBuilder builder(city.zone_count(), config.taxi_count);
  Time last_emitted = 0.0;
  while (!queue.empty()) {
    const Pending next = queue.top();
    queue.pop();
    if (next.time > config.duration) continue;  // drain the horizon
    Taxi& taxi = fleet[next.taxi];
    taxi.advance(next.time - last_advance[next.taxi], city, rng);
    last_advance[next.taxi] = next.time;

    std::vector<ItemId> items{taxi.item()};
    const std::size_t pair = next.taxi / 2;
    const std::size_t partner = next.taxi ^ 1u;
    if (pair < pair_count && partner < config.taxi_count &&
        rng.next_bool(co_access[pair])) {
      items.push_back(static_cast<ItemId>(partner));
    }
    // Globally unique, strictly increasing timestamps.
    const Time stamp = std::max(next.time, last_emitted + 1e-7);
    last_emitted = stamp;
    builder.add(city.zone_of(taxi.position()), stamp, std::move(items));

    queue.push(Pending{next.time + taxi.next_request_gap(rng), next.taxi});
  }
  return std::move(builder).build();
}

}  // namespace dpg
