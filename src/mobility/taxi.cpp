#include "mobility/taxi.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dpg {

Taxi::Taxi(ItemId item, Position start, const TaxiConfig& config)
    : item_(item), position_(start), waypoint_(start), config_(config) {
  require(config.speed > 0.0, "Taxi: speed must be positive");
  require(config.request_rate > 0.0, "Taxi: request_rate must be positive");
  require(config.hotspot_bias >= 0.0 && config.hotspot_bias <= 1.0,
          "Taxi: hotspot_bias must be in [0, 1]");
}

void Taxi::pick_waypoint(const CityGrid& city, Rng& rng) {
  if (rng.next_bool(config_.hotspot_bias)) {
    waypoint_ = city.center_of(city.sample_hotspot(rng));
  } else {
    waypoint_ = city.sample_position(rng);
  }
  has_waypoint_ = true;
}

void Taxi::advance(double dt, const CityGrid& city, Rng& rng) {
  double remaining = config_.speed * dt;  // distance budget
  while (remaining > 0.0) {
    if (!has_waypoint_) pick_waypoint(city, rng);
    const double dx = waypoint_.x - position_.x;
    const double dy = waypoint_.y - position_.y;
    const double dist = std::hypot(dx, dy);
    if (dist <= remaining) {
      position_ = waypoint_;
      remaining -= dist;
      has_waypoint_ = false;
      if (dist == 0.0 && remaining > 0.0) {
        // Degenerate waypoint on our position: pick another and, if the
        // generator keeps handing us our own location, stop moving this
        // tick rather than loop forever.
        pick_waypoint(city, rng);
        const double d2 = std::hypot(waypoint_.x - position_.x,
                                     waypoint_.y - position_.y);
        if (d2 == 0.0) break;
      }
    } else {
      position_.x += dx / dist * remaining;
      position_.y += dy / dist * remaining;
      remaining = 0.0;
    }
  }
}

}  // namespace dpg
