#include "mobility/city.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace dpg {

CityGrid::CityGrid(std::size_t width, std::size_t height,
                   std::size_t hotspot_count, Rng& rng)
    : width_(width), height_(height) {
  require(width > 0 && height > 0, "CityGrid: dimensions must be positive");
  require(hotspot_count >= 1, "CityGrid: need at least one hotspot");
  require(hotspot_count <= zone_count(),
          "CityGrid: more hotspots than zones");
  // Choose distinct hotspot zones via a partial shuffle.
  std::vector<ServerId> zones(zone_count());
  std::iota(zones.begin(), zones.end(), ServerId{0});
  for (std::size_t i = 0; i < hotspot_count; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(
                                  rng.next_below(zones.size() - i));
    std::swap(zones[i], zones[j]);
  }
  hotspots_.assign(zones.begin(),
                   zones.begin() + static_cast<std::ptrdiff_t>(hotspot_count));
  // Zipf-like gravity: the first hotspot is the dominant commercial center.
  hotspot_weight_.resize(hotspot_count);
  for (std::size_t i = 0; i < hotspot_count; ++i) {
    hotspot_weight_[i] = 1.0 / static_cast<double>(i + 1);
  }
}

ServerId CityGrid::zone_of(Position position) const noexcept {
  const double x = std::clamp(position.x, 0.0,
                              static_cast<double>(width_) - 1e-9);
  const double y = std::clamp(position.y, 0.0,
                              static_cast<double>(height_) - 1e-9);
  const auto col = static_cast<std::size_t>(x);
  const auto row = static_cast<std::size_t>(y);
  return static_cast<ServerId>(row * width_ + col);
}

Position CityGrid::center_of(ServerId zone) const {
  require(zone < zone_count(), "center_of: zone out of range");
  const std::size_t row = zone / width_;
  const std::size_t col = zone % width_;
  return Position{static_cast<double>(col) + 0.5,
                  static_cast<double>(row) + 0.5};
}

ServerId CityGrid::sample_hotspot(Rng& rng) const {
  return hotspots_[rng.next_weighted(hotspot_weight_)];
}

Position CityGrid::sample_position(Rng& rng) const {
  return Position{rng.next_double(0.0, static_cast<double>(width_)),
                  rng.next_double(0.0, static_cast<double>(height_))};
}

}  // namespace dpg
