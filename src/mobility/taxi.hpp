// One taxi: a hotspot-biased random-waypoint mover.  The paper's setup maps
// each taxi to one distinct data item ("10 taxis, each accessing a single
// distinct data item"); correlation between items arises when taxis travel
// together (fleet pairs) and co-issue requests.
#pragma once

#include "mobility/city.hpp"

namespace dpg {

struct TaxiConfig {
  double speed = 2.0;          // city units per time unit
  double hotspot_bias = 0.7;   // probability the next waypoint is a hotspot
  double request_rate = 1.0;   // Poisson request rate while driving
};

class Taxi {
 public:
  Taxi(ItemId item, Position start, const TaxiConfig& config);

  [[nodiscard]] ItemId item() const noexcept { return item_; }
  [[nodiscard]] Position position() const noexcept { return position_; }

  /// Advances the taxi by `dt` towards its waypoint, picking a fresh
  /// waypoint (hotspot-biased) whenever one is reached.
  void advance(double dt, const CityGrid& city, Rng& rng);

  /// Draws the time until this taxi's next request.
  [[nodiscard]] double next_request_gap(Rng& rng) const {
    return rng.next_exponential(config_.request_rate);
  }

 private:
  void pick_waypoint(const CityGrid& city, Rng& rng);

  ItemId item_;
  Position position_;
  Position waypoint_;
  bool has_waypoint_ = false;
  TaxiConfig config_;
};

}  // namespace dpg
