// City model: a rectangular grid of zones, each hosting one cache server
// (the paper partitions Shenzhen into ~50 parts, "each maintaining a data
// server to serve the user requests made in the taxis").  A subset of zones
// are *hotspots* (commercial centers) that attract taxi trips; hotspot
// gravity is what produces the skewed spatial request distribution of
// Fig. 9 and the trajectory locality the algorithms exploit.
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"
#include "util/rng.hpp"

namespace dpg {

/// Continuous position in city coordinates ([0, width) × [0, height)).
struct Position {
  double x = 0.0;
  double y = 0.0;
};

class CityGrid {
 public:
  /// `hotspot_count` zones are promoted to hotspots with Zipf-like weights.
  CityGrid(std::size_t width, std::size_t height, std::size_t hotspot_count,
           Rng& rng);

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }
  [[nodiscard]] std::size_t zone_count() const noexcept {
    return width_ * height_;
  }

  /// Server/zone id of a position (positions are clamped to the city).
  [[nodiscard]] ServerId zone_of(Position position) const noexcept;

  /// Center of a zone.
  [[nodiscard]] Position center_of(ServerId zone) const;

  [[nodiscard]] const std::vector<ServerId>& hotspots() const noexcept {
    return hotspots_;
  }

  /// Draws a hotspot with gravity proportional to its weight.
  [[nodiscard]] ServerId sample_hotspot(Rng& rng) const;

  /// Draws a uniformly random position in the city.
  [[nodiscard]] Position sample_position(Rng& rng) const;

 private:
  std::size_t width_;
  std::size_t height_;
  std::vector<ServerId> hotspots_;
  std::vector<double> hotspot_weight_;
};

}  // namespace dpg
