// The simple greedy baseline of the approximation analysis (Fig. 4):
// each service point is satisfied by the cheaper of
//   * a cache on its own server from the previous same-server visit, or
//   * a cache-then-transfer from the immediately preceding service point.
// Section IV-B shows this is at most 2× the optimal offline cost under the
// homogeneous model; tests/approximation_test.cpp checks that bound.
#pragma once

#include "core/cost_model.hpp"
#include "core/flow.hpp"
#include "solver/solve_result.hpp"

namespace dpg {

/// Solves one flow greedily. The reported raw_cost is the per-decision sum
/// the paper analyses; the reconstructed schedule's cost can only be lower
/// (shared cache lines are double-counted by the greedy accounting but
/// unioned in the schedule).
[[nodiscard]] SolveResult solve_greedy(const Flow& flow, const CostModel& model,
                                       std::size_t server_count);

/// The chain strategy: the copy simply follows the request trajectory
/// (always Tr, never a same-server cache line).  The weakest sensible
/// offline policy; benches use it as a floor-of-quality baseline.
[[nodiscard]] SolveResult solve_chain(const Flow& flow, const CostModel& model);

/// Greedy under the heterogeneous cost generalization (per-server μ,
/// per-pair λ); the only solver that accepts it, since the general problem
/// is conjectured NP-complete (Section III-C).
[[nodiscard]] SolveResult solve_greedy_heterogeneous(
    const Flow& flow, const HeterogeneousCostModel& model);

}  // namespace dpg
