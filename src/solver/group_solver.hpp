// Multi-item packing (the extension sketched in the paper's Remarks).
//
// Generalizes DP_Greedy from pairs to groups of up to `max_group_size`
// correlated items.  Grouping uses complete-linkage agglomeration on the
// Jaccard graph (solver/pairing.hpp); serving generalizes Phase 2:
//   * requests containing the FULL group → optimal DP over the group flow at
//     the g·α package rate (Table II row k > 1),
//   * requests containing a proper subset S → the cheaper of serving each
//     item of S individually (greedy cache/transfer options) or fetching the
//     whole always-available package once for g·α·λ.
// With max_group_size = 2 this reproduces DP_Greedy's costs exactly
// (tests/group_solver_test.cpp locks that equivalence).
#pragma once

#include <vector>

#include "core/cost_model.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"
#include "solver/dp_greedy.hpp"
#include "solver/optimal_offline.hpp"
#include "solver/pairing.hpp"

namespace dpg {

class ThreadPool;

struct GroupReport {
  std::vector<ItemId> items;
  Cost package_cost = 0.0;   // g·α-discounted DP over full-group requests
  Cost partial_cost = 0.0;   // greedy cost of proper-subset requests
  /// λ-side of partial_cost (individual transfers + whole-package fetches);
  /// the μ-side is partial_cost − partial_transfer_cost.
  Cost partial_transfer_cost = 0.0;
  std::size_t partial_transfer_events = 0;  // λ-charges behind that cost
  std::size_t full_request_count = 0;
  std::size_t total_accesses = 0;  // Σ |d_i| over the group
  Schedule package_schedule;

  [[nodiscard]] Cost total_cost() const noexcept {
    return package_cost + partial_cost;
  }
};

struct GroupDpGreedyResult {
  GroupPacking packing;
  std::vector<GroupReport> groups;
  std::vector<SingleItemReport> singles;
  Cost total_cost = 0.0;
  std::size_t total_item_accesses = 0;
  double ave_cost = 0.0;
};

struct GroupDpGreedyOptions {
  double theta = 0.3;
  std::size_t max_group_size = 3;
  OptimalOfflineOptions dp;
  /// When set, the per-group/per-single Phase-2 solves shard over this pool
  /// (results are bit-identical to the serial path).
  ThreadPool* pool = nullptr;
};

[[nodiscard]] GroupDpGreedyResult solve_group_dp_greedy(
    const RequestSequence& sequence, const CostModel& model,
    const GroupDpGreedyOptions& options = {});

/// Phase 2 for one explicit group (harness entry point).
[[nodiscard]] GroupReport solve_group_package(
    const RequestSequence& sequence, const CostModel& model,
    const std::vector<ItemId>& group, const OptimalOfflineOptions& dp = {});

}  // namespace dpg
