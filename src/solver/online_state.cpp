#include "solver/online_state.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dpg {

namespace {

const obs::Counter g_online_repacks = obs::counter("online.repack_rounds");
const obs::Counter g_online_packs = obs::counter("online.pack_events");
const obs::Counter g_online_unpacks = obs::counter("online.unpack_events");
const obs::Counter g_online_transfers = obs::counter("online.transfers");
const obs::Counter g_online_package_fetches =
    obs::counter("online.package_fetches");
const obs::Counter g_break_even_solves = obs::counter("online.break_even_solves");
const obs::Counter g_break_even_drops = obs::counter("online.break_even_drops");

}  // namespace

void OnlineOptions::validate() const {
  require(hold_factor > 0.0,
          "OnlineOptions.hold_factor: must be > 0, got " +
              format_fixed(hold_factor, 6));
}

void OnlineDpGreedyOptions::validate() const {
  require(theta >= 0.0 && theta <= 1.0,
          "OnlineDpGreedyOptions.theta: must be in [0, 1], got " +
              format_fixed(theta, 6));
  require(window > 0, "OnlineDpGreedyOptions.window: must be >= 1, got 0");
  require(repack_interval > 0,
          "OnlineDpGreedyOptions.repack_interval: must be >= 1, got 0");
  require(hold_factor > 0.0,
          "OnlineDpGreedyOptions.hold_factor: must be > 0, got " +
              format_fixed(hold_factor, 6));
}

// ---------------------------------------------------------------------------
// BreakEvenFlowState

Cost BreakEvenFlowState::serve(ServerId server, Time t, const CostModel& model,
                               double horizon, bool never_drop,
                               std::size_t* transfer_count, Time* cache_time) {
  retire(t, model, horizon, never_drop, cache_time);
  for (ReplicaCopy& c : copies_) {
    if (c.server == server) {
      c.last_use = t;
      return 0.0;  // cache accrual is charged at retirement/finalize
    }
  }
  ReplicaCopy* source = &copies_.front();
  for (ReplicaCopy& c : copies_) {
    if (c.last_use > source->last_use) source = &c;
  }
  source->last_use = t;  // held until now to source the transfer
  copies_.push_back(ReplicaCopy{server, t, t});
  ++*transfer_count;
  return multiplier_ * model.lambda;
}

bool BreakEvenFlowState::has_copy_at(ServerId server) const {
  return std::any_of(
      copies_.begin(), copies_.end(),
      [server](const ReplicaCopy& c) { return c.server == server; });
}

void BreakEvenFlowState::add_copy(ServerId server, Time t) {
  for (ReplicaCopy& c : copies_) {
    if (c.server == server) {
      c.last_use = t;
      return;
    }
  }
  copies_.push_back(ReplicaCopy{server, t, t});
}

const ReplicaCopy& BreakEvenFlowState::most_recent() const {
  const ReplicaCopy* best = &copies_.front();
  for (const ReplicaCopy& c : copies_) {
    if (c.last_use > best->last_use) best = &c;
  }
  return *best;
}

Cost BreakEvenFlowState::finalize(const CostModel& model, Time* cache_time) {
  Cost cost = 0.0;
  for (const ReplicaCopy& c : copies_) {
    cost += multiplier_ * model.mu * (c.last_use - c.since);
    *cache_time += c.last_use - c.since;
  }
  copies_.clear();
  return cost;
}

void BreakEvenFlowState::peek_accrued(const CostModel& model, Cost* cost,
                                      Time* cache_time) const {
  for (const ReplicaCopy& c : copies_) {
    *cost += multiplier_ * model.mu * (c.last_use - c.since);
    *cache_time += c.last_use - c.since;
  }
}

void BreakEvenFlowState::retire(Time now, const CostModel& model,
                                double horizon, bool never_drop,
                                Time* cache_time) {
  if (never_drop) return;
  Time newest = -1.0;
  for (const ReplicaCopy& c : copies_) newest = std::max(newest, c.last_use);
  for (std::size_t i = 0; i < copies_.size();) {
    ReplicaCopy& c = copies_[i];
    const Time drop_time = c.last_use + horizon;
    if (c.last_use < newest && drop_time < now) {
      if (pending_sink_ != nullptr) {
        *pending_sink_ += multiplier_ * model.mu * (drop_time - c.since);
      }
      *cache_time += drop_time - c.since;
      copies_[i] = copies_.back();
      copies_.pop_back();
    } else {
      ++i;
    }
  }
}

// ---------------------------------------------------------------------------
// OnlineBreakEvenState

OnlineBreakEvenState::OnlineBreakEvenState(const CostModel& model,
                                           std::size_t server_count,
                                           std::size_t group_size,
                                           const OnlineOptions& options)
    : model_(model),
      server_count_(server_count),
      group_size_(group_size),
      never_drop_(model.mu == 0.0),
      horizon_(never_drop_ ? 0.0
                           : options.hold_factor * model.lambda / model.mu) {
  model.validate();
  options.validate();
  g_break_even_solves.add();
  result_.schedule = Schedule(group_size);
  copies_.push_back(ReplicaCopy{kOriginServer, 0.0, 0.0});
}

void OnlineBreakEvenState::advance(const ServicePoint& point) {
  require(point.server < server_count_,
          "solve_online_break_even: server out of range");
  // 1) Retire copies whose break-even horizon expired before `point.time`,
  //    keeping at least the most recently used copy alive.
  if (!never_drop_) {
    Time newest = -1.0;
    for (const ReplicaCopy& c : copies_) newest = std::max(newest, c.last_use);
    for (std::size_t i = 0; i < copies_.size();) {
      ReplicaCopy& c = copies_[i];
      const Time drop_time = c.last_use + horizon_;
      if (c.last_use < newest && drop_time < point.time) {
        result_.cache_time += drop_time - c.since;
        result_.schedule.add_segment(c.server, c.since, drop_time);
        g_break_even_drops.add();
        copies_[i] = copies_.back();
        copies_.pop_back();
      } else {
        ++i;
      }
    }
  }

  // 2) Serve the request: local hit extends the local copy; otherwise
  //    transfer a replica from the most recently used live copy.
  ReplicaCopy* local = nullptr;
  for (ReplicaCopy& c : copies_) {
    if (c.server == point.server) {
      local = &c;
      break;
    }
  }
  if (local != nullptr) {
    local->last_use = point.time;
  } else {
    ReplicaCopy* source = &copies_.front();
    for (ReplicaCopy& c : copies_) {
      if (c.last_use > source->last_use) source = &c;
    }
    ++result_.transfer_count;
    // Serving as a transfer source counts as a use: the copy was in fact
    // held until now, so its accounted segment (and horizon) extend to
    // `point.time`, keeping the recorded schedule causally grounded.
    result_.schedule.add_transfer(source->server, point.server, point.time);
    source->last_use = point.time;
    copies_.push_back(ReplicaCopy{point.server, point.time, point.time});
  }
  ++served_;
}

void OnlineBreakEvenState::advance_batch(std::span<const ServicePoint> points) {
  for (const ServicePoint& point : points) advance(point);
}

OnlineResult OnlineBreakEvenState::finish() {
  // 3) Close the books: every surviving copy is charged up to its last use
  //    (an online run ends when the request stream ends).
  for (const ReplicaCopy& c : copies_) {
    result_.cache_time += c.last_use - c.since;
    result_.schedule.add_segment(c.server, c.since, c.last_use);
  }
  copies_.clear();
  result_.raw_cost =
      model_.mu * result_.cache_time +
      model_.lambda * static_cast<double>(result_.transfer_count);
  result_.cost = model_.flow_multiplier(group_size_) * result_.raw_cost;
  return std::move(result_);
}

// ---------------------------------------------------------------------------
// OnlineDpGreedyState

OnlineDpGreedyState::OnlineDpGreedyState(const CostModel& model,
                                         const OnlineDpGreedyOptions& options,
                                         std::size_t item_count)
    : model_(model),
      options_(options),
      never_drop_(model.mu == 0.0),
      horizon_(never_drop_ ? 0.0
                           : options.hold_factor * model.lambda / model.mu),
      pack_rate_(model.flow_multiplier(2)),
      window_(item_count, options.window) {
  model.validate();
  options.validate();
  ensure_item_count(item_count);
}

void OnlineDpGreedyState::ensure_item_count(std::size_t item_count) {
  if (item_count <= partner_.size()) return;
  window_.ensure_item_count(item_count);
  partner_.resize(item_count, kNoItem);
  package_lo_.resize(item_count, kNoItem);
  item_flow_.reserve(item_count);
  while (item_flow_.size() < item_count) {
    // New items start at the origin at time 0, exactly as a batch solve
    // initializes the full universe up front.
    item_flow_.emplace_back(1.0, kOriginServer, 0.0);
    item_flow_.back().set_pending_cost(&result_.total_cost);
  }
}

OnlineDpGreedyState::Decision OnlineDpGreedyState::push(
    ServerId server, Time time, std::span<const ItemId> items) {
  require(requests_seen_ == 0 || time > last_time_,
          "OnlineDpGreedyState::push: request times must be strictly "
          "increasing");
  if (!items.empty()) {
    ensure_item_count(static_cast<std::size_t>(items.back()) + 1);
  }

  Decision decision;
  const Cost cost_before = result_.total_cost;
  const std::size_t transfers_before = result_.transfers;
  const std::size_t fetches_before = result_.package_fetches;

  window_.add(items);
  if (++since_repack_ >= options_.repack_interval) {
    since_repack_ = 0;
    repack(time, decision);
  }

  // Serve: group the packed pairs that appear fully in this request.
  if (handled_.capacity() < items.size()) ++scratch_allocs_;
  handled_.assign(items.size(), false);
  for (std::size_t x = 0; x < items.size(); ++x) {
    if (handled_[x]) continue;
    const ItemId item = items[x];
    const ItemId mate = partner_[item];
    const bool mate_present =
        mate != kNoItem &&
        std::binary_search(items.begin(), items.end(), mate);
    if (mate_present) {
      // Full package request.  serve() returns only the λ part of the
      // charge (cache accrual flows through the pending-cost sink).
      const Cost shipped =
          package_slot(item).serve(server, time, model_, horizon_, never_drop_,
                                   &result_.transfers, &result_.cache_time);
      result_.total_cost += shipped;
      result_.transfer_cost += shipped;
      for (std::size_t y = 0; y < items.size(); ++y) {
        if (items[y] == mate) handled_[y] = true;
      }
      handled_[x] = true;
    } else if (mate != kNoItem) {
      // Single item of a packed pair: free if the package is local,
      // otherwise fetch the package for 2αλ (Observation 2).
      BreakEvenFlowState& flow = package_slot(item);
      if (!flow.has_copy_at(server)) {
        result_.total_cost += pack_rate_ * model_.lambda;
        result_.transfer_cost += pack_rate_ * model_.lambda;
        ++result_.package_fetches;
        flow.add_copy(server, time);
      } else {
        flow.add_copy(server, time);  // refresh last_use
      }
      handled_[x] = true;
    } else {
      // Unpacked item: plain break-even.
      const Cost shipped =
          item_flow_[item].serve(server, time, model_, horizon_, never_drop_,
                                 &result_.transfers, &result_.cache_time);
      result_.total_cost += shipped;
      result_.transfer_cost += shipped;
      handled_[x] = true;
    }
  }

  result_.total_item_accesses += items.size();
  last_time_ = time;
  ++requests_seen_;

  decision.cost_delta = result_.total_cost - cost_before;
  decision.transfers = result_.transfers - transfers_before;
  decision.package_fetches = result_.package_fetches - fetches_before;
  return decision;
}

OnlineDpGreedyState::Decision OnlineDpGreedyState::push_batch(
    const RequestBlock& block) {
  // Every row takes the exact push() path — bit-identity at any batch size
  // falls out by construction (same FP accumulation order, same scratch and
  // window allocation accounting).  The batch win lives a layer up: the
  // engine amortizes its mutex, telemetry clock reads, and counter updates
  // across the block, and the decode stage hands rows over pre-canonicalized
  // so push() never re-sorts.
  Decision total;
  const std::size_t rows = block.size();
  for (std::size_t i = 0; i < rows; ++i) {
    const Decision d =
        push(block.server_of(i), block.time_of(i), block.items_of(i));
    total.cost_delta += d.cost_delta;
    total.transfers += d.transfers;
    total.package_fetches += d.package_fetches;
    total.pack_events += d.pack_events;
    total.unpack_events += d.unpack_events;
    total.repacked = total.repacked || d.repacked;
  }
  return total;
}

void OnlineDpGreedyState::repack(Time now, Decision& decision) {
  const obs::TraceSpan repack_span("epoch/repack");
  g_online_repacks.add();
  ++repacks_;
  decision.repacked = true;
  const std::size_t k = partner_.size();
  // Dissolve pairs whose windowed similarity decayed below θ/2.
  for (ItemId a = 0; a < k; ++a) {
    const ItemId b = partner_[a];
    if (b == kNoItem || a > b) continue;
    if (window_.jaccard(a, b) < options_.theta / 2.0) {
      // Split: both items get a copy where the package was last used.
      const ReplicaCopy seat = package_slot(a).most_recent();
      result_.total_cost += package_slot(a).finalize(model_, &result_.cache_time);
      free_package_slots_.push_back(package_lo_[a]);
      package_lo_[a] = kNoItem;
      package_lo_[b] = kNoItem;
      item_flow_[a] = BreakEvenFlowState(1.0, seat.server, now);
      item_flow_[a].set_pending_cost(&result_.total_cost);
      item_flow_[b] = BreakEvenFlowState(1.0, seat.server, now);
      item_flow_[b].set_pending_cost(&result_.total_cost);
      partner_[a] = kNoItem;
      partner_[b] = kNoItem;
      ++result_.unpack_events;
      ++decision.unpack_events;
      --live_packages_;
    }
  }
  // Form new pairs greedily by descending windowed similarity.  The sparse
  // co-pair walk visits every pair with co_freq > 0 — a superset of every
  // pair that can clear θ (J > θ ≥ 0 requires co > 0) — and the sort below
  // totally orders the unique (J, (a, b)) keys, so the candidate list is
  // bit-identical to the dense row scan this replaces, in the same order.
  if (candidates_.empty() && candidates_.capacity() == 0) ++scratch_allocs_;
  candidates_.clear();
  window_.for_each_co_pair([this](ItemId a, ItemId b, std::size_t) {
    if (partner_[a] != kNoItem || partner_[b] != kNoItem) return;
    const double j = window_.jaccard(a, b);
    if (j > options_.theta) candidates_.emplace_back(j, std::make_pair(a, b));
  });
  std::sort(candidates_.rbegin(), candidates_.rend());
  for (const auto& [j, pair] : candidates_) {
    const auto [a, b] = pair;
    if (partner_[a] != kNoItem || partner_[b] != kNoItem) continue;
    // Assemble the package at a's most recent location; b's copy is
    // shipped there at the individual rate.
    const ReplicaCopy seat = item_flow_[a].most_recent();
    result_.total_cost += item_flow_[a].finalize(model_, &result_.cache_time);
    result_.total_cost += item_flow_[b].finalize(model_, &result_.cache_time);
    result_.total_cost += model_.lambda;  // move b to the assembly point
    result_.transfer_cost += model_.lambda;
    ++result_.transfers;
    partner_[a] = b;
    partner_[b] = a;
    if (free_package_slots_.empty()) {
      package_lo_[a] = static_cast<ItemId>(package_flow_.size());
      package_flow_.emplace_back(pack_rate_, seat.server, now);
    } else {
      // Reuse a dissolved slot so the table stays O(k), not O(pack events).
      package_lo_[a] = free_package_slots_.back();
      free_package_slots_.pop_back();
      package_flow_[package_lo_[a]] =
          BreakEvenFlowState(pack_rate_, seat.server, now);
    }
    package_lo_[b] = package_lo_[a];
    package_flow_[package_lo_[a]].set_pending_cost(&result_.total_cost);
    ++result_.pack_events;
    ++decision.pack_events;
    ++live_packages_;
  }
}

OnlineDpGreedyResult OnlineDpGreedyState::finalize() {
  // Close the books on every live flow, in ascending item order (the same
  // order — and therefore the same floating-point accumulation — as the
  // batch implementation).
  const std::size_t k = partner_.size();
  for (ItemId item = 0; item < k; ++item) {
    if (partner_[item] == kNoItem) {
      result_.total_cost +=
          item_flow_[item].finalize(model_, &result_.cache_time);
    } else if (item < partner_[item]) {
      result_.total_cost +=
          package_slot(item).finalize(model_, &result_.cache_time);
    }
  }
  result_.ave_cost =
      result_.total_item_accesses == 0
          ? 0.0
          : result_.total_cost /
                static_cast<double>(result_.total_item_accesses);
  g_online_packs.add(result_.pack_events);
  g_online_unpacks.add(result_.unpack_events);
  g_online_transfers.add(result_.transfers);
  g_online_package_fetches.add(result_.package_fetches);
  return result_;
}

OnlineDpGreedyResult OnlineDpGreedyState::value_now() const {
  OnlineDpGreedyResult result = result_;
  const std::size_t k = partner_.size();
  for (ItemId item = 0; item < k; ++item) {
    if (partner_[item] == kNoItem) {
      item_flow_[item].peek_accrued(model_, &result.total_cost,
                                    &result.cache_time);
    } else if (item < partner_[item]) {
      package_slot(item).peek_accrued(model_, &result.total_cost,
                                      &result.cache_time);
    }
  }
  result.ave_cost =
      result.total_item_accesses == 0
          ? 0.0
          : result.total_cost /
                static_cast<double>(result.total_item_accesses);
  return result;
}

std::uint64_t OnlineDpGreedyState::alloc_events() const noexcept {
  return window_.alloc_events() + scratch_allocs_;
}

}  // namespace dpg
