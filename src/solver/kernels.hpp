// Branch-light structure-of-arrays kernels for the Phase-2 DP hot loops.
//
// solve_optimal_offline spends its time in two places: the w_j =
// min(λ, μ·Δt) / prefix-sum pass and the window minimum over v_k =
// C(k) − W(k) inside D(i).  Both are rewritten here as flat column passes —
// a precomputed same-server link column instead of a per-node branch on
// p(j), a saturating min instead of an if, and a blocked min-reduction for
// the window scan.  The SSE2 variants are hand-written intrinsics (SSE2 is
// the x86-64 baseline, so no runtime dispatch is needed); every kernel has
// a scalar fallback compiled on other ISAs, and both variants are
// bit-identical to the reference loops they replace:
//
//   * min over finite doubles is exact in IEEE-754, so a blocked
//     _mm_min_pd reduction returns the same bits as a serial scan;
//   * argmin ties resolve to the LATEST index in the window, matching the
//     SuffixMin monotonic stack (push pops `>=`, keeping the newest of any
//     equal run) — the scalar reference scans backward with a strict `<`
//     for the same reason;
//   * the link column stores the ∞ "no previous visit" sentinel directly
//     instead of multiplying μ into an ∞ Δt, which would manufacture NaNs
//     at μ = 0.
//
// The kernels are cross-checked bit-identical against the scalar reference
// in tests/kernels_test.cpp and against the full solver paths in
// tests/kernel_equivalence_test.cpp; the ≥2x single-thread speedup gate
// lives in bench/bm_solvers.cpp (`dp_kernel` section of BENCH_solvers.json).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>

#include "core/types.hpp"

#if defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define DPG_KERNELS_SSE2 1
#include <emmintrin.h>
#else
#define DPG_KERNELS_SSE2 0
#endif

namespace dpg::kernels {

/// Name of the instruction set the kernels compile to (for telemetry and
/// bench provenance).
[[nodiscard]] inline const char* active_isa() noexcept {
#if DPG_KERNELS_SSE2
  return "sse2";
#else
  return "scalar";
#endif
}

/// D(i) windows no wider than this take the blocked scan over the dense v
/// column; wider windows fall back to the SuffixMin stack, which answers in
/// O(log) regardless of width.  Windows are ~n/m nodes on average, so the
/// scan path covers everything up to ~96-server-spread flows; 96 · 8 bytes
/// is 12 cache lines, well under the crossover measured in bm_solvers.
inline constexpr std::size_t kWindowScanThreshold = 96;

// ---------------------------------------------------------------------------
// Link column: link[j] = μ·(t_j − t_{p(j)}), or ∞ when p(j) does not exist.

/// Scalar reference.  The gather through prev[] dominates; there is no
/// profitable SSE2 variant (no 64-bit gather below AVX2), so the dispatching
/// name forwards here on every ISA.
inline void link_costs_scalar(const Time* times, const std::int32_t* prev,
                              double mu, std::size_t n, Cost* link) {
  link[0] = kInfiniteCost;  // node 0 is the origin; never read
  for (std::size_t j = 1; j < n; ++j) {
    const std::int32_t p = prev[j];
    link[j] = p >= 0
                  ? mu * (times[j] - times[static_cast<std::size_t>(p)])
                  : kInfiniteCost;
  }
}

inline void link_costs(const Time* times, const std::int32_t* prev, double mu,
                       std::size_t n, Cost* link) {
  link_costs_scalar(times, prev, mu, n, link);
}

// ---------------------------------------------------------------------------
// w / W pass: w[j] = min(λ, link[j]), w_prefix[j] = w_prefix[j-1] + w[j].

/// Scalar reference for the fused pass (indices 1..n-1; slot 0 is zeroed).
inline void w_and_prefix_scalar(const Cost* link, double lambda,
                                std::size_t n, Cost* w, Cost* w_prefix) {
  w[0] = 0.0;
  w_prefix[0] = 0.0;
  for (std::size_t j = 1; j < n; ++j) {
    w[j] = std::min(lambda, link[j]);
    w_prefix[j] = w_prefix[j - 1] + w[j];
  }
}

/// The min pass vectorizes (MINPD has exactly std::min's semantics for the
/// finite-vs-∞ inputs here); the prefix sum stays serial — its loop-carried
/// dependency is the definition of W.  Same bits as the fused scalar pass.
inline void w_and_prefix(const Cost* link, double lambda, std::size_t n,
                         Cost* w, Cost* w_prefix) {
#if DPG_KERNELS_SSE2
  w[0] = 0.0;
  w_prefix[0] = 0.0;
  const __m128d lam = _mm_set1_pd(lambda);
  std::size_t j = 1;
  for (; j + 2 <= n; j += 2) {
    _mm_storeu_pd(w + j, _mm_min_pd(_mm_loadu_pd(link + j), lam));
  }
  for (; j < n; ++j) w[j] = std::min(lambda, link[j]);
  for (j = 1; j < n; ++j) w_prefix[j] = w_prefix[j - 1] + w[j];
#else
  w_and_prefix_scalar(link, lambda, n, w, w_prefix);
#endif
}

// ---------------------------------------------------------------------------
// Window minimum over v[lo..hi): value and LATEST argmin among ties.

/// Scalar reference: backward scan with a strict `<`, so the latest index of
/// any equal run wins — the tie rule SuffixMin implements via its `>=` pop.
[[nodiscard]] inline std::pair<std::int32_t, double> window_min_scalar(
    const double* v, std::size_t lo, std::size_t hi) {
  std::size_t arg = hi - 1;
  double best = v[arg];
  for (std::size_t k = hi - 1; k-- > lo;) {
    if (v[k] < best) {
      best = v[k];
      arg = k;
    }
  }
  return {static_cast<std::int32_t>(arg), best};
}

/// Blocked SSE2 min-reduction (two accumulators, so the 4-cycle MINPD
/// latency chain splits in half), then a vectorized backward equality scan
/// to the latest exact match.  Matches the scalar reference bit for bit:
/// min over finite doubles is exact, so the reduction returns the same bits
/// as a serial scan, and taking the higher-index lane of the first matching
/// pair yields the latest argmin among ties.
[[nodiscard]] inline std::pair<std::int32_t, double> window_min(
    const double* v, std::size_t lo, std::size_t hi) {
#if DPG_KERNELS_SSE2
  __m128d acc0 = _mm_set1_pd(v[hi - 1]);
  __m128d acc1 = acc0;
  std::size_t k = lo;
  for (; k + 4 <= hi; k += 4) {
    acc0 = _mm_min_pd(acc0, _mm_loadu_pd(v + k));
    acc1 = _mm_min_pd(acc1, _mm_loadu_pd(v + k + 2));
  }
  __m128d acc = _mm_min_pd(acc0, acc1);
  for (; k + 2 <= hi; k += 2) {
    acc = _mm_min_pd(acc, _mm_loadu_pd(v + k));
  }
  double best =
      _mm_cvtsd_f64(_mm_min_sd(acc, _mm_unpackhi_pd(acc, acc)));
  if (k < hi && v[k] < best) best = v[k];
  // Backward locate, two lanes at a time.  CMPEQPD + MOVMSKPD flags both
  // lanes of a pair; bit 1 is the higher index, so it wins a within-pair
  // tie.  If no pair matched, only v[lo] can be left (an equal element must
  // exist — `best` is the min over [lo, hi)).
  const __m128d vb = _mm_set1_pd(best);
  std::size_t e = hi;
  std::size_t arg = lo;
  while (e - lo >= 2) {
    const int mask =
        _mm_movemask_pd(_mm_cmpeq_pd(_mm_loadu_pd(v + e - 2), vb));
    if (mask != 0) {
      arg = e - 2 + ((mask & 2) != 0 ? 1 : 0);
      break;
    }
    e -= 2;
  }
  return {static_cast<std::int32_t>(arg), best};
#else
  return window_min_scalar(v, lo, hi);
#endif
}

// ---------------------------------------------------------------------------
// Greedy serve choices (Phase-2 singleton / partial-request passes).

/// Indices into the three-way serve choice, in reference tie order:
/// cache wins any tie, then transfer over package.
enum ServeChoiceIndex : std::uint8_t {
  kChoiceCache = 0,
  kChoiceTransfer = 1,
  kChoicePackage = 2,
};

/// The dp_greedy singleton decision as straight-line selects: cache if it
/// ties-or-beats both, else transfer if it ties-or-beats package, else
/// package.  Identical to the reference if/else chain.
[[nodiscard]] inline ServeChoiceIndex serve_choice3(Cost cache, Cost transfer,
                                                    Cost package,
                                                    Cost* cost) noexcept {
  const bool take_cache = cache <= transfer && cache <= package;
  const bool take_transfer = !take_cache && transfer <= package;
  *cost = take_cache ? cache : (take_transfer ? transfer : package);
  return take_cache ? kChoiceCache
                    : (take_transfer ? kChoiceTransfer : kChoicePackage);
}

/// The group-solver per-slot decision: cheaper of cache/transfer, flagging
/// a strict transfer win (the reference charges λ only on `transfer <
/// cache`, so a tie counts as cache).
[[nodiscard]] inline Cost min_cache_transfer(Cost cache, Cost transfer,
                                             bool* took_transfer) noexcept {
  *took_transfer = transfer < cache;
  return std::min(cache, transfer);
}

// ---------------------------------------------------------------------------
// Jaccard row (online repack candidate scan).

/// out[b] = |a ∩ b| / |a ∪ b| over windowed counts for b in [b_begin, k):
/// one dense row pass with the division blended against the empty-union
/// case, replacing the per-pair function call + branch of the reference
/// (jaccard_similarity in solver/correlation.cpp — same expression, same
/// bits).
inline void jaccard_row(const std::size_t* freq, const std::size_t* co_row,
                        std::size_t freq_a, std::size_t b_begin,
                        std::size_t k, double* out) {
  for (std::size_t b = b_begin; b < k; ++b) {
    const std::size_t co = co_row[b];
    const std::size_t union_size = freq_a + freq[b] - co;
    out[b] = union_size == 0 ? 0.0
                             : static_cast<double>(co) /
                                   static_cast<double>(union_size);
  }
}

}  // namespace dpg::kernels
