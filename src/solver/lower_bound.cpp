#include "solver/lower_bound.hpp"

#include "core/flow.hpp"

namespace dpg {

PackedLowerBound packed_lower_bound(const RequestSequence& sequence,
                                    const CostModel& model,
                                    const OptimalOfflineOptions& dp) {
  model.validate();
  OptimalOfflineOptions options = dp;
  options.build_schedule = false;
  PackedLowerBound bound;
  for (ItemId item = 0; item < sequence.item_count(); ++item) {
    bound.sum_item_optima +=
        solve_optimal_offline(make_item_flow(sequence, item), model,
                              sequence.server_count(), options)
            .raw_cost;
  }
  bound.lemma1 = model.alpha * bound.sum_item_optima;
  return bound;
}

}  // namespace dpg
