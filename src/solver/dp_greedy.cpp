#include "solver/dp_greedy.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "solver/correlation.hpp"
#include "solver/kernels.hpp"
#include "solver/phase2_shard.hpp"
#include "solver/workspace.hpp"
#include "util/error.hpp"

namespace dpg {

namespace {

const obs::Counter g_packages_solved = obs::counter("phase2.packages_solved");
const obs::Counter g_singles_solved = obs::counter("phase2.singles_solved");
const obs::Counter g_singleton_services =
    obs::counter("phase2.singleton_services");

/// Greedy service of the requests that touch exactly one item of a pair.
/// Events of `item` (origin, single-item requests, package requests) are
/// walked in time order; package events cost nothing here (the package DP
/// already paid for them) but do update the recency state the greedy
/// options consult, because serving a request leaves a copy behind.
///
/// The reference is one fused stateful loop; the kernel variant below
/// splits it into SoA column passes.  Both orders of accumulation are the
/// event order, so the two are bit-identical (cross-checked in
/// tests/kernel_equivalence_test.cpp).
void serve_singletons_scalar(const RequestSequence& sequence,
                             const CostModel& model, ItemId item,
                             ItemId partner, PackageReport& report,
                             SolverWorkspace& ws) {
  // Recency state over this item's event history (workspace scratch).
  Time prev_time = 0.0;
  ws.server_times.assign(sequence.server_count(), -1.0);
  std::vector<Time>& last_on_server = ws.server_times;
  last_on_server[kOriginServer] = 0.0;  // the origin copy

  for (const std::size_t index : sequence.indices_for_item(item)) {
    const Request& r = sequence[index];
    const bool is_package_request = r.contains(partner);
    if (!is_package_request) {
      Cost cache_option = kInfiniteCost;
      if (last_on_server[r.server] >= 0.0) {
        cache_option = model.mu * (r.time - last_on_server[r.server]);
      }
      const Cost transfer_option = model.mu * (r.time - prev_time) + model.lambda;
      const Cost package_option = model.package_fetch_cost();

      SingletonService service;
      service.request_index = index;
      service.item = item;
      if (cache_option <= transfer_option && cache_option <= package_option) {
        service.choice = ServeChoice::kCacheSameServer;
        service.cost = cache_option;
      } else if (transfer_option <= package_option) {
        service.choice = ServeChoice::kTransferFromPrev;
        service.cost = transfer_option;
      } else {
        service.choice = ServeChoice::kPackageFetch;
        service.cost = package_option;
      }
      report.singleton_cost += service.cost;
      report.services.push_back(service);
    }
    prev_time = r.time;
    last_on_server[r.server] = r.time;
  }
}

/// Kernelized serve_singletons: three column passes over the item's events.
/// Pass 1 (scalar, stateful) gathers each event's recency inputs; pass 2 is
/// the branch-light cost/choice math over flat columns; pass 3 accumulates
/// serially in event order, so the report is bit-identical to the fused
/// reference above.
void serve_singletons_kernel(const RequestSequence& sequence,
                             const CostModel& model, ItemId item,
                             ItemId partner, PackageReport& report,
                             SolverWorkspace& ws) {
  const std::span<const std::size_t> events = sequence.indices_for_item(item);
  const std::size_t e_count = events.size();
  SingletonScratch& sc = ws.singles;
  sc.time.resize(e_count);
  sc.prev_time.resize(e_count);
  sc.same_time.resize(e_count);
  sc.cost.resize(e_count);
  sc.choice.resize(e_count);
  sc.is_package.resize(e_count);

  // Pass 1: recency gather (inherently serial — each event updates state).
  Time prev_time = 0.0;
  ws.server_times.assign(sequence.server_count(), -1.0);
  std::vector<Time>& last_on_server = ws.server_times;
  last_on_server[kOriginServer] = 0.0;  // the origin copy
  for (std::size_t e = 0; e < e_count; ++e) {
    const std::size_t index = events[e];
    const ServerId server = sequence.server_of(index);
    const Time time = sequence.time_of(index);
    sc.time[e] = time;
    sc.prev_time[e] = prev_time;
    sc.same_time[e] = last_on_server[server];
    sc.is_package[e] = sequence[index].contains(partner) ? 1 : 0;
    prev_time = time;
    last_on_server[server] = time;
  }

  // Pass 2: cost + choice as straight-line column math.
  const double mu = model.mu;
  const Cost lambda = model.lambda;
  const Cost package_option = model.package_fetch_cost();
  for (std::size_t e = 0; e < e_count; ++e) {
    const Cost cache_option = sc.same_time[e] >= 0.0
                                  ? mu * (sc.time[e] - sc.same_time[e])
                                  : kInfiniteCost;
    const Cost transfer_option = mu * (sc.time[e] - sc.prev_time[e]) + lambda;
    Cost cost;
    sc.choice[e] = static_cast<std::uint8_t>(kernels::serve_choice3(
        cache_option, transfer_option, package_option, &cost));
    sc.cost[e] = cost;
  }

  // Pass 3: serial accumulation in event order.
  static_assert(static_cast<int>(ServeChoice::kCacheSameServer) ==
                    kernels::kChoiceCache &&
                static_cast<int>(ServeChoice::kTransferFromPrev) ==
                    kernels::kChoiceTransfer &&
                static_cast<int>(ServeChoice::kPackageFetch) ==
                    kernels::kChoicePackage,
                "serve choice encodings must line up");
  for (std::size_t e = 0; e < e_count; ++e) {
    if (sc.is_package[e] != 0) continue;
    SingletonService service;
    service.request_index = events[e];
    service.item = item;
    service.choice = static_cast<ServeChoice>(sc.choice[e]);
    service.cost = sc.cost[e];
    report.singleton_cost += service.cost;
    report.services.push_back(service);
  }
}

void serve_singletons(const RequestSequence& sequence, const CostModel& model,
                      ItemId item, ItemId partner, PackageReport& report,
                      const OptimalOfflineOptions& dp, SolverWorkspace& ws) {
  if (dp.use_kernels) {
    serve_singletons_kernel(sequence, model, item, partner, report, ws);
  } else {
    serve_singletons_scalar(sequence, model, item, partner, report, ws);
  }
}

PackageReport solve_pair_package_ws(const RequestSequence& sequence,
                                    const CostModel& model, ItemPair pair,
                                    const OptimalOfflineOptions& dp,
                                    SolverWorkspace& ws) {
  PackageReport report;
  report.pair = pair;
  report.total_accesses =
      sequence.item_frequency(pair.a) + sequence.item_frequency(pair.b);

  make_package_flow(sequence, pair.a, pair.b, ws.flow);
  report.co_request_count = ws.flow.size();
  SolveResult package =
      solve_optimal_offline(ws.flow, model, sequence.server_count(), dp, &ws);
  report.package_cost = package.cost;  // already 2α-discounted
  report.package_schedule = std::move(package.schedule);

  serve_singletons(sequence, model, pair.a, pair.b, report, dp, ws);
  serve_singletons(sequence, model, pair.b, pair.a, report, dp, ws);
  g_singleton_services.add(report.services.size());
  return report;
}

SingleItemReport solve_single_ws(const RequestSequence& sequence,
                                 const CostModel& model, ItemId item,
                                 const OptimalOfflineOptions& dp,
                                 SolverWorkspace& ws) {
  SingleItemReport report;
  report.item = item;
  report.accesses = sequence.item_frequency(item);
  make_item_flow(sequence, item, ws.flow);
  SolveResult solved =
      solve_optimal_offline(ws.flow, model, sequence.server_count(), dp, &ws);
  report.cost = solved.cost;
  report.schedule = std::move(solved.schedule);
  return report;
}

}  // namespace

PackageReport solve_pair_package(const RequestSequence& sequence,
                                 const CostModel& model, ItemPair pair,
                                 const OptimalOfflineOptions& dp,
                                 SolverWorkspace* workspace) {
  model.validate();
  SolverWorkspace local;
  return solve_pair_package_ws(sequence, model, pair, dp,
                               workspace != nullptr ? *workspace : local);
}

DpGreedyResult solve_dp_greedy(const RequestSequence& sequence,
                               const CostModel& model,
                               const DpGreedyOptions& options) {
  model.validate();
  require(options.theta >= 0.0 && options.theta <= 1.0,
          "solve_dp_greedy: theta must be in [0, 1]");

  DpGreedyResult result;
  result.total_item_accesses = sequence.total_item_accesses();

  const obs::TraceSpan solve_span("solve/dp_greedy");

  // Phase 1: correlation analysis and greedy packing.  The counting pass
  // shards over the Phase-2 pool unless the caller pinned its own.
  {
    const obs::TraceSpan phase1_span("dp_greedy/phase1");
    CorrelationOptions correlation = options.correlation;
    if (correlation.pool == nullptr) correlation.pool = options.pool;
    const CorrelationAnalysis analysis(sequence, correlation);
    result.packing =
        greedy_pairing(analysis, options.theta, options.inclusive_threshold);
  }

  // Phase 2: independent per-package and per-single solves, sharded through
  // the one shared fan-out path (solver/phase2_shard.hpp).  Every solve
  // writes its pre-sized slot; the reductions below run serially in flow
  // order, so totals are bit-identical at every pool width.
  const std::size_t pair_count = result.packing.pairs.size();
  const std::size_t single_count = result.packing.singles.size();
  result.packages.resize(pair_count);
  result.singles.resize(single_count);
  const obs::TraceSpan phase2_span("dp_greedy/phase2");
  g_packages_solved.add(pair_count);
  g_singles_solved.add(single_count);
  for_each_flow_sharded(
      options.pool, pair_count + single_count,
      [&](std::size_t i, SolverWorkspace& ws) {
        if (i < pair_count) {
          result.packages[i] = solve_pair_package_ws(
              sequence, model, result.packing.pairs[i], options.dp, ws);
        } else {
          result.singles[i - pair_count] =
              solve_single_ws(sequence, model,
                              result.packing.singles[i - pair_count],
                              options.dp, ws);
        }
      });

  for (const PackageReport& report : result.packages) {
    result.total_cost += report.total_cost();
  }
  for (const SingleItemReport& report : result.singles) {
    result.total_cost += report.cost;
  }
  result.ave_cost =
      result.total_item_accesses == 0
          ? 0.0
          : result.total_cost / static_cast<double>(result.total_item_accesses);
  return result;
}

}  // namespace dpg
