#include "solver/online.hpp"

#include <algorithm>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace dpg {

namespace {

const obs::Counter g_break_even_solves = obs::counter("online.break_even_solves");
const obs::Counter g_break_even_drops = obs::counter("online.break_even_drops");

/// One live replica.
struct Copy {
  ServerId server;
  Time since;     // cache accrual counted from here
  Time last_use;  // most recent service this copy performed
};

}  // namespace

OnlineResult solve_online_break_even(const Flow& flow, const CostModel& model,
                                     std::size_t server_count,
                                     const OnlineOptions& options) {
  model.validate();
  validate_flow(flow);
  const obs::TraceSpan span("online/break_even");
  g_break_even_solves.add();
  require(options.hold_factor >= 0.0,
          "solve_online_break_even: hold_factor must be >= 0");
  OnlineResult result;
  result.schedule = Schedule(flow.group_size);

  // With μ = 0, caching is free: the break-even horizon is infinite and no
  // copy is ever dropped.
  const bool never_drop = model.mu == 0.0;
  const Time horizon =
      never_drop ? 0.0 : options.hold_factor * model.lambda / model.mu;

  std::vector<Copy> copies;
  copies.push_back(Copy{kOriginServer, 0.0, 0.0});

  const auto most_recent_use = [&copies]() {
    Time best = -1.0;
    for (const Copy& c : copies) best = std::max(best, c.last_use);
    return best;
  };

  for (const ServicePoint& point : flow.points) {
    require(point.server < server_count,
            "solve_online_break_even: server out of range");
    // 1) Retire copies whose break-even horizon expired before `point.time`,
    //    keeping at least the most recently used copy alive.
    if (!never_drop) {
      const Time newest = most_recent_use();
      for (std::size_t i = 0; i < copies.size();) {
        Copy& c = copies[i];
        const Time drop_time = c.last_use + horizon;
        if (c.last_use < newest && drop_time < point.time) {
          result.cache_time += drop_time - c.since;
          result.schedule.add_segment(c.server, c.since, drop_time);
          g_break_even_drops.add();
          copies[i] = copies.back();
          copies.pop_back();
        } else {
          ++i;
        }
      }
    }

    // 2) Serve the request: local hit extends the local copy; otherwise
    //    transfer a replica from the most recently used live copy.
    Copy* local = nullptr;
    for (Copy& c : copies) {
      if (c.server == point.server) {
        local = &c;
        break;
      }
    }
    if (local != nullptr) {
      local->last_use = point.time;
    } else {
      Copy* source = &copies.front();
      for (Copy& c : copies) {
        if (c.last_use > source->last_use) source = &c;
      }
      ++result.transfer_count;
      // Serving as a transfer source counts as a use: the copy was in fact
      // held until now, so its accounted segment (and horizon) extend to
      // `point.time`, keeping the recorded schedule causally grounded.
      result.schedule.add_transfer(source->server, point.server, point.time);
      source->last_use = point.time;
      copies.push_back(Copy{point.server, point.time, point.time});
    }
  }

  // 3) Close the books: every surviving copy is charged up to its last use
  //    (an online run ends when the request stream ends).
  for (const Copy& c : copies) {
    result.cache_time += c.last_use - c.since;
    result.schedule.add_segment(c.server, c.since, c.last_use);
  }

  result.raw_cost = model.mu * result.cache_time +
                    model.lambda * static_cast<double>(result.transfer_count);
  result.cost = model.flow_multiplier(flow.group_size) * result.raw_cost;
  return result;
}

}  // namespace dpg
