#include "solver/online.hpp"

#include "obs/trace.hpp"
#include "solver/online_state.hpp"

namespace dpg {

// Thin driver over OnlineBreakEvenState (solver/online_state.hpp), which
// advances one service point at a time; feeding it a whole flow is
// bit-identical to the monolithic loop this replaces.
OnlineResult solve_online_break_even(const Flow& flow, const CostModel& model,
                                     std::size_t server_count,
                                     const OnlineOptions& options) {
  validate_flow(flow);
  const obs::TraceSpan span("online/break_even");
  OnlineBreakEvenState state(model, server_count, flow.group_size, options);
  for (const ServicePoint& point : flow.points) {
    state.advance(point);
  }
  return state.finish();
}

}  // namespace dpg
