#include "solver/temporal_correlation.hpp"

#include <algorithm>

#include "solver/correlation.hpp"
#include "util/error.hpp"

namespace dpg {

std::vector<WindowedJaccardPoint> windowed_jaccard_series(
    const RequestSequence& sequence, ItemId a, ItemId b, std::size_t window,
    std::size_t stride) {
  require(a < sequence.item_count() && b < sequence.item_count() && a != b,
          "windowed_jaccard_series: bad item pair");
  require(window > 0 && stride > 0,
          "windowed_jaccard_series: window and stride must be positive");
  std::vector<WindowedJaccardPoint> series;
  if (sequence.size() < window) return series;

  // Rolling counts over the request window.
  std::size_t freq_a = 0, freq_b = 0, co = 0;
  const auto bump = [&](const Request& r, std::ptrdiff_t delta) {
    const bool has_a = r.contains(a);
    const bool has_b = r.contains(b);
    const auto apply = [delta](std::size_t& value) {
      value = static_cast<std::size_t>(
          static_cast<std::ptrdiff_t>(value) + delta);
    };
    if (has_a) apply(freq_a);
    if (has_b) apply(freq_b);
    if (has_a && has_b) apply(co);
  };
  for (std::size_t i = 0; i < window; ++i) bump(sequence[i], +1);
  series.push_back(WindowedJaccardPoint{
      sequence[window - 1].time, jaccard_similarity(freq_a, freq_b, co)});
  for (std::size_t end = window; end < sequence.size(); ++end) {
    bump(sequence[end], +1);
    bump(sequence[end - window], -1);
    if ((end - window + 1) % stride == 0) {
      series.push_back(WindowedJaccardPoint{
          sequence[end].time, jaccard_similarity(freq_a, freq_b, co)});
    }
  }
  return series;
}

DilutionReport measure_dilution(const RequestSequence& sequence, ItemId a,
                                ItemId b, std::size_t window) {
  DilutionReport report;
  report.global_jaccard = jaccard_similarity(sequence.item_frequency(a),
                                             sequence.item_frequency(b),
                                             sequence.pair_frequency(a, b));
  const auto series = windowed_jaccard_series(sequence, a, b, window, 1);
  if (series.empty()) {
    report.peak_windowed = report.global_jaccard;
    report.mean_windowed = report.global_jaccard;
    return report;
  }
  double sum = 0.0;
  for (const WindowedJaccardPoint& point : series) {
    report.peak_windowed = std::max(report.peak_windowed, point.jaccard);
    sum += point.jaccard;
  }
  report.mean_windowed = sum / static_cast<double>(series.size());
  return report;
}

}  // namespace dpg
