#include "solver/correlation.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dpg {

namespace {

const obs::Counter g_requests_scanned = obs::counter("phase1.requests_scanned");
const obs::Counter g_observed_pairs = obs::counter("phase1.observed_pairs");
const obs::Counter g_map_probes = obs::counter("phase1.map_probes");
const obs::Counter g_map_resizes = obs::counter("phase1.map_resizes");
const obs::Counter g_shards_merged = obs::counter("phase1.shards_merged");
const obs::Histogram g_shard_pairs = obs::histogram("phase1.shard_pairs");

/// Fibonacci-style mix of the packed pair key into a table slot seed.
std::uint64_t mix_key(std::uint64_t key) noexcept {
  key ^= key >> 33;
  key *= 0xff51afd7ed558ccdull;
  key ^= key >> 33;
  key *= 0xc4ceb9fe1a85ec53ull;
  key ^= key >> 33;
  return key;
}

std::size_t round_up_pow2(std::size_t value) noexcept {
  std::size_t capacity = 16;
  while (capacity < value) capacity <<= 1;
  return capacity;
}

/// Sort order of the pair dictionary (Algorithm 1 line 14).
bool pair_before(const PairCorrelation& x, const PairCorrelation& y) noexcept {
  if (x.jaccard != y.jaccard) return x.jaccard > y.jaccard;
  if (x.a != y.a) return x.a < y.a;
  return x.b < y.b;
}

}  // namespace

double jaccard_similarity(std::size_t freq_a, std::size_t freq_b,
                          std::size_t co_freq) noexcept {
  const std::size_t union_size = freq_a + freq_b - co_freq;
  if (union_size == 0) return 0.0;
  return static_cast<double>(co_freq) / static_cast<double>(union_size);
}

PairCountMap::PairCountMap(std::size_t expected_pairs) {
  // Sized for load factor <= 0.5 at the expected fill.
  const std::size_t capacity = round_up_pow2(expected_pairs * 2);
  keys_.assign(capacity, kEmptyKey);
  counts_.assign(capacity, 0);
}

std::size_t PairCountMap::slot_of(std::uint64_t key) const noexcept {
  const std::size_t mask = keys_.size() - 1;
  std::size_t slot = static_cast<std::size_t>(mix_key(key)) & mask;
  std::size_t probes = 1;
  while (keys_[slot] != kEmptyKey && keys_[slot] != key) {
    slot = (slot + 1) & mask;
    ++probes;
  }
  g_map_probes.add(probes);
  return slot;
}

void PairCountMap::add(std::uint64_t key, std::size_t delta) {
  assert(key != kEmptyKey);
  std::size_t slot = slot_of(key);
  if (keys_[slot] == kEmptyKey) {
    if ((size_ + 1) * 2 > keys_.size()) {
      grow();
      slot = slot_of(key);
    }
    keys_[slot] = key;
    ++size_;
  }
  counts_[slot] += delta;
}

void PairCountMap::sub(std::uint64_t key, std::size_t delta) {
  assert(key != kEmptyKey);
  const std::size_t slot = slot_of(key);
  assert(keys_[slot] == key && counts_[slot] >= delta);
  if (keys_[slot] != key || counts_[slot] < delta) {
    throw InvalidArgument("PairCountMap::sub: count underflow");
  }
  counts_[slot] -= delta;
}

std::size_t PairCountMap::count(std::uint64_t key) const noexcept {
  const std::size_t slot = slot_of(key);
  return keys_[slot] == key ? counts_[slot] : 0;
}

void PairCountMap::merge(const PairCountMap& other) {
  other.for_each([this](std::uint64_t key, std::size_t n) { add(key, n); });
}

void PairCountMap::grow() {
  g_map_resizes.add();
  std::vector<std::uint64_t> old_keys = std::move(keys_);
  std::vector<std::size_t> old_counts = std::move(counts_);
  keys_.assign(old_keys.size() * 2, kEmptyKey);
  counts_.assign(old_counts.size() * 2, 0);
  for (std::size_t i = 0; i < old_keys.size(); ++i) {
    if (old_keys[i] == kEmptyKey) continue;
    const std::size_t slot = slot_of(old_keys[i]);
    keys_[slot] = old_keys[i];
    counts_[slot] = old_counts[i];
  }
}

CorrelationAnalysis::CorrelationAnalysis(const RequestSequence& sequence,
                                         const CorrelationOptions& options)
    : k_(sequence.item_count()), frequency_(k_, 0) {
  const obs::TraceSpan span("phase1/correlation");
  for (ItemId item = 0; item < k_; ++item) {
    frequency_[item] = sequence.item_frequency(item);
  }
  switch (options.mode) {
    case CorrelationOptions::Mode::kDense:
      sparse_ = false;
      break;
    case CorrelationOptions::Mode::kSparse:
      sparse_ = true;
      break;
    case CorrelationOptions::Mode::kAuto:
      sparse_ = k_ > options.dense_max_items;
      break;
  }
  if (sparse_) {
    count_sparse(sequence, options.pool);
  } else {
    count_dense(sequence);
  }
  g_requests_scanned.add(sequence.size());
  g_observed_pairs.add(observed_pair_count_);
  {
    const obs::TraceSpan sort_span("phase1/sort");
    std::sort(sorted_pairs_.begin(), sorted_pairs_.end(), pair_before);
  }
}

PairCorrelation CorrelationAnalysis::make_pair(ItemId a, ItemId b,
                                               std::size_t co) const noexcept {
  PairCorrelation pair;
  pair.a = a;
  pair.b = b;
  pair.freq_a = frequency_[a];
  pair.freq_b = frequency_[b];
  pair.co_freq = co;
  pair.jaccard = jaccard_similarity(pair.freq_a, pair.freq_b, co);
  return pair;
}

void CorrelationAnalysis::count_dense(const RequestSequence& sequence) {
  const obs::TraceSpan span("phase1/count_dense");
  co_frequency_.assign(k_ * (k_ - 1) / 2, 0);
  // One pass over requests: bump the counter of every co-requested pair.
  // tri_index is assert-checked only — it runs per pair per request.
  for (const Request& r : sequence.requests()) {
    for (std::size_t x = 0; x < r.items.size(); ++x) {
      for (std::size_t y = x + 1; y < r.items.size(); ++y) {
        ++co_frequency_[tri_index(r.items[x], r.items[y])];
      }
    }
  }
  sorted_pairs_.reserve(co_frequency_.size());
  for (ItemId a = 0; a + 1 < k_; ++a) {
    for (ItemId b = a + 1; b < k_; ++b) {
      const std::size_t co = co_frequency_[tri_index(a, b)];
      if (co > 0) ++observed_pair_count_;
      sorted_pairs_.push_back(make_pair(a, b, co));
    }
  }
}

void CorrelationAnalysis::count_sparse(const RequestSequence& sequence,
                                       ThreadPool* pool) {
  const obs::TraceSpan span("phase1/count_sparse");
  const auto count_range = [&sequence](std::size_t begin, std::size_t end,
                                       PairCountMap& into) {
    for (std::size_t i = begin; i < end; ++i) {
      const Request& r = sequence[i];
      for (std::size_t x = 0; x < r.items.size(); ++x) {
        for (std::size_t y = x + 1; y < r.items.size(); ++y) {
          into.add(PairCountMap::pack(r.items[x], r.items[y]));
        }
      }
    }
  };

  if (pool != nullptr && pool->worker_count() > 1 && sequence.size() > 1) {
    // Shard the sequence; each worker counts into its own map, merged after
    // the join.  Addition commutes, so the merged counts are bit-identical
    // to the serial pass regardless of scheduling.
    std::vector<PairCountMap> shards;
    parallel_for_chunks(*pool, sequence.size(),
                        [&](std::size_t shard, std::size_t begin,
                            std::size_t end) {
                          const obs::TraceSpan shard_span("phase1/shard");
                          count_range(begin, end, shards[shard]);
                          g_shard_pairs.record(shards[shard].size());
                        },
                        [&shards](std::size_t shard_count) {
                          shards.resize(shard_count);
                        });
    const obs::TraceSpan merge_span("phase1/merge");
    g_shards_merged.add(shards.size());
    for (const PairCountMap& shard : shards) co_counts_.merge(shard);
  } else {
    count_range(0, sequence.size(), co_counts_);
  }

  observed_pair_count_ = co_counts_.size();
  sorted_pairs_.reserve(co_counts_.size());
  co_counts_.for_each([this](std::uint64_t key, std::size_t co) {
    sorted_pairs_.push_back(make_pair(PairCountMap::unpack_a(key),
                                      PairCountMap::unpack_b(key), co));
  });
}

std::size_t CorrelationAnalysis::tri_index(ItemId a, ItemId b) const noexcept {
  assert(a < k_ && b < k_ && a != b);
  if (a > b) std::swap(a, b);
  // Row-major upper triangle: offset of row a plus column within the row.
  const std::size_t row_offset =
      static_cast<std::size_t>(a) * (2 * k_ - a - 1) / 2;
  return row_offset + (b - a - 1);
}

double CorrelationAnalysis::jaccard(ItemId a, ItemId b) const {
  require(a < k_ && b < k_, "jaccard: item out of range");
  if (a == b) return 1.0;
  return jaccard_similarity(frequency_[a], frequency_[b], co_frequency(a, b));
}

std::size_t CorrelationAnalysis::frequency(ItemId item) const {
  require(item < k_, "frequency: item out of range");
  return frequency_[item];
}

std::size_t CorrelationAnalysis::co_frequency(ItemId a, ItemId b) const {
  require(a < k_ && b < k_, "co_frequency: item out of range");
  if (a == b) return frequency_[a];
  if (sparse_) return co_counts_.count(PairCountMap::pack(a, b));
  return co_frequency_[tri_index(a, b)];
}

std::vector<PairCorrelation> CorrelationAnalysis::frequent_pairs(
    double min_jaccard) const {
  // Pairs are sorted by descending Jaccard, so the qualifying range is a
  // prefix: binary-search its end, reserve exactly, and drop the J = 0 tail
  // entries the dense view keeps for never-co-requested pairs.
  const auto cut = std::partition_point(
      sorted_pairs_.begin(), sorted_pairs_.end(),
      [min_jaccard](const PairCorrelation& pair) {
        return pair.jaccard >= min_jaccard;
      });
  std::vector<PairCorrelation> out;
  out.reserve(static_cast<std::size_t>(cut - sorted_pairs_.begin()));
  std::copy_if(sorted_pairs_.begin(), cut, std::back_inserter(out),
               [](const PairCorrelation& pair) { return pair.co_freq > 0; });
  return out;
}

std::string CorrelationAnalysis::to_string(std::size_t max_rows) const {
  std::string out = "pair  |d_a| |d_b| co  J\n";
  std::size_t rows = 0;
  for (const PairCorrelation& p : sorted_pairs_) {
    if (rows++ >= max_rows) break;
    out += "(" + std::to_string(p.a) + "," + std::to_string(p.b) + ")  " +
           std::to_string(p.freq_a) + " " + std::to_string(p.freq_b) + " " +
           std::to_string(p.co_freq) + "  " + format_fixed(p.jaccard, 4) + "\n";
  }
  return out;
}

}  // namespace dpg
