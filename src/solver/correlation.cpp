#include "solver/correlation.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dpg {

double jaccard_similarity(std::size_t freq_a, std::size_t freq_b,
                          std::size_t co_freq) noexcept {
  const std::size_t union_size = freq_a + freq_b - co_freq;
  if (union_size == 0) return 0.0;
  return static_cast<double>(co_freq) / static_cast<double>(union_size);
}

CorrelationAnalysis::CorrelationAnalysis(const RequestSequence& sequence)
    : k_(sequence.item_count()),
      frequency_(k_, 0),
      co_frequency_(k_ * (k_ - 1) / 2, 0) {
  for (ItemId item = 0; item < k_; ++item) {
    frequency_[item] = sequence.item_frequency(item);
  }
  // One pass over requests: bump the counter of every co-requested pair.
  for (const Request& r : sequence.requests()) {
    for (std::size_t x = 0; x < r.items.size(); ++x) {
      for (std::size_t y = x + 1; y < r.items.size(); ++y) {
        ++co_frequency_[tri_index(r.items[x], r.items[y])];
      }
    }
  }
  for (ItemId a = 0; a + 1 < k_; ++a) {
    for (ItemId b = a + 1; b < k_; ++b) {
      PairCorrelation pair;
      pair.a = a;
      pair.b = b;
      pair.freq_a = frequency_[a];
      pair.freq_b = frequency_[b];
      pair.co_freq = co_frequency_[tri_index(a, b)];
      pair.jaccard = jaccard_similarity(pair.freq_a, pair.freq_b, pair.co_freq);
      sorted_pairs_.push_back(pair);
    }
  }
  std::sort(sorted_pairs_.begin(), sorted_pairs_.end(),
            [](const PairCorrelation& x, const PairCorrelation& y) {
              if (x.jaccard != y.jaccard) return x.jaccard > y.jaccard;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
}

std::size_t CorrelationAnalysis::tri_index(ItemId a, ItemId b) const {
  require(a < k_ && b < k_ && a != b, "CorrelationAnalysis: bad item pair");
  if (a > b) std::swap(a, b);
  // Row-major upper triangle: offset of row a plus column within the row.
  const std::size_t row_offset =
      static_cast<std::size_t>(a) * (2 * k_ - a - 1) / 2;
  return row_offset + (b - a - 1);
}

double CorrelationAnalysis::jaccard(ItemId a, ItemId b) const {
  require(a < k_ && b < k_, "jaccard: item out of range");
  if (a == b) return 1.0;
  return jaccard_similarity(frequency_[a], frequency_[b],
                            co_frequency_[tri_index(a, b)]);
}

std::size_t CorrelationAnalysis::frequency(ItemId item) const {
  require(item < k_, "frequency: item out of range");
  return frequency_[item];
}

std::size_t CorrelationAnalysis::co_frequency(ItemId a, ItemId b) const {
  require(a < k_ && b < k_, "co_frequency: item out of range");
  if (a == b) return frequency_[a];
  return co_frequency_[tri_index(a, b)];
}

std::vector<PairCorrelation> CorrelationAnalysis::frequent_pairs(
    double min_jaccard) const {
  std::vector<PairCorrelation> out;
  for (const PairCorrelation& pair : sorted_pairs_) {
    if (pair.co_freq > 0 && pair.jaccard >= min_jaccard) out.push_back(pair);
  }
  return out;
}

std::string CorrelationAnalysis::to_string(std::size_t max_rows) const {
  std::string out = "pair  |d_a| |d_b| co  J\n";
  std::size_t rows = 0;
  for (const PairCorrelation& p : sorted_pairs_) {
    if (rows++ >= max_rows) break;
    out += "(" + std::to_string(p.a) + "," + std::to_string(p.b) + ")  " +
           std::to_string(p.freq_a) + " " + std::to_string(p.freq_b) + " " +
           std::to_string(p.co_freq) + "  " + format_fixed(p.jaccard, 4) + "\n";
  }
  return out;
}

}  // namespace dpg
