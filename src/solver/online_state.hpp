// Resumable per-flow state for the online policies.
//
// solve_online_break_even and solve_online_dp_greedy used to be monolithic
// left-to-right loops over a fully materialized input; this header extracts
// their loop bodies into state objects that advance one request at a time,
// so a long-lived serving engine (engine/streaming_engine.hpp) can push
// requests as they arrive and snapshot mid-stream.  The batch entry points
// remain as thin drivers over these states and are bit-identical to the
// pre-extraction implementations at every option setting.
//
//   * BreakEvenFlowState — the rent-or-buy replica set of ONE flow (an item
//     or a package): serve/retire/finalize with the λ/μ break-even horizon.
//   * OnlineBreakEvenState — the schedule-recording variant driving one
//     flow's ServicePoints (what solve_online_break_even steps).
//   * OnlineDpGreedyState — the full windowed-packing policy: a
//     WindowedCorrelation over the last `window` requests, epoch re-pairing
//     under the θ / θ·hysteresis split rule, break-even serving of item and
//     package flows, and a running OnlineDpGreedyResult that can be valued
//     non-destructively at any time (value_now) or closed out (finalize).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/cost_model.hpp"
#include "core/flow.hpp"
#include "core/request_block.hpp"
#include "core/types.hpp"
#include "solver/online.hpp"
#include "solver/online_dp_greedy.hpp"
#include "solver/windowed_correlation.hpp"

namespace dpg {

/// One live replica of a flow.
struct ReplicaCopy {
  ServerId server;
  Time since;
  Time last_use;
};

/// Break-even replica management for one flow (an item or a package).
/// Identical in policy to the per-flow online rule; item flows and package
/// flows share this accounting.  Cache accrual of copies dropped at their
/// horizon flows through the pending-cost sink; live copies are charged at
/// finalize (or valued via peek_accrued).
class BreakEvenFlowState {
 public:
  BreakEvenFlowState(double multiplier, ServerId start_server, Time start_time)
      : multiplier_(multiplier) {
    copies_.push_back(ReplicaCopy{start_server, start_time, start_time});
  }

  /// Retires expired copies, then serves a request at (server, t).
  /// Returns the cost increment (multiplier applied; λ-side only — cache
  /// accrual is charged at retirement/finalize).
  Cost serve(ServerId server, Time t, const CostModel& model, double horizon,
             bool never_drop, std::size_t* transfer_count, Time* cache_time);

  /// True if a copy of this flow is live at `server` right now.
  [[nodiscard]] bool has_copy_at(ServerId server) const;

  /// Adds a replica at (server, t) (used by package fetches).
  void add_copy(ServerId server, Time t);

  /// Most recently used copy (always exists).
  [[nodiscard]] const ReplicaCopy& most_recent() const;

  /// Charges all copies up to their last use and clears the flow.
  Cost finalize(const CostModel& model, Time* cache_time);

  /// What finalize would charge right now, without mutating: accrued cache
  /// cost and cache time of the live copies, in the same copy order (so a
  /// snapshot valuation is bit-identical to an actual close-out).
  void peek_accrued(const CostModel& model, Cost* cost, Time* cache_time) const;

  /// Where the cache cost of horizon-dropped copies accrues.
  void set_pending_cost(Cost* sink) { pending_sink_ = sink; }

 private:
  void retire(Time now, const CostModel& model, double horizon,
              bool never_drop, Time* cache_time);

  double multiplier_;
  std::vector<ReplicaCopy> copies_;
  Cost* pending_sink_ = nullptr;
};

/// The resumable loop body of solve_online_break_even: one flow's replica
/// set plus the reconstructed schedule, advanced one ServicePoint at a time.
class OnlineBreakEvenState {
 public:
  /// Validates the model and options eagerly (OnlineOptions::validate).
  OnlineBreakEvenState(const CostModel& model, std::size_t server_count,
                       std::size_t group_size, const OnlineOptions& options);

  /// Serves one point (strictly after every previous one).
  void advance(const ServicePoint& point);

  /// Serves a run of points in order — the batch entry the pipelined serve
  /// path uses.  Same per-point arithmetic as advance(), so the result is
  /// bit-identical at every batch size.
  void advance_batch(std::span<const ServicePoint> points);

  /// Closes the books (charges every surviving copy to its last use) and
  /// returns the result.  The state is spent afterwards.
  [[nodiscard]] OnlineResult finish();

  [[nodiscard]] std::size_t points_served() const noexcept { return served_; }

 private:
  CostModel model_;
  std::size_t server_count_;
  std::size_t group_size_;
  bool never_drop_;
  Time horizon_;
  std::vector<ReplicaCopy> copies_;
  OnlineResult result_;
  std::size_t served_ = 0;
};

/// The resumable core of online DP_Greedy: windowed Jaccard packing with
/// epoch re-pairing and break-even serving, advanced one request at a time.
///
/// Non-copyable/non-movable: flow states hold a pending-cost sink pointer
/// into the running result.  Long-lived fronts hold it behind the
/// StreamingEngine; the batch driver stack-allocates one per solve.
class OnlineDpGreedyState {
 public:
  /// What one push did — the serving decision for that request.
  struct Decision {
    Cost cost_delta = 0.0;          // total cost charged by this push
    std::size_t transfers = 0;      // wire transfers (λ-charges)
    std::size_t package_fetches = 0;  // Observation-2 package fetches
    std::size_t pack_events = 0;    // pairs formed (repack pushes only)
    std::size_t unpack_events = 0;  // pairs dissolved
    bool repacked = false;          // this push ran an epoch re-pairing
  };

  /// Validates the model and options eagerly (OnlineDpGreedyOptions::validate).
  OnlineDpGreedyState(const CostModel& model,
                      const OnlineDpGreedyOptions& options,
                      std::size_t item_count);
  OnlineDpGreedyState(const OnlineDpGreedyState&) = delete;
  OnlineDpGreedyState& operator=(const OnlineDpGreedyState&) = delete;

  /// Serves one request.  `items` must be sorted and duplicate-free (a
  /// RequestSequence row); `time` strictly greater than every previous push.
  /// Item ids beyond the current universe grow it (ensure_item_count).
  Decision push(ServerId server, Time time, std::span<const ItemId> items);

  /// Serves every row of a block in trace order and returns the aggregate
  /// decision (event counts summed, `repacked` if any row repacked).  Rows
  /// go through the exact push() arithmetic — same floating-point
  /// accumulation order, same scratch/window allocation accounting — so the
  /// state after push_batch is bit-identical to per-row pushes at every
  /// batch size.  Block rows must honor the push() contract (sorted unique
  /// items, strictly increasing times), which both block readers guarantee.
  Decision push_batch(const RequestBlock& block);

  /// Grows the item universe (new items start at the origin at time 0,
  /// exactly as a batch solve initializes them).  Never shrinks.
  void ensure_item_count(std::size_t item_count);

  /// Closes the books on every live flow and returns the final result.
  /// The state is spent afterwards.
  [[nodiscard]] OnlineDpGreedyResult finalize();

  /// The result as if finalized right now, without mutating anything — the
  /// same arithmetic in the same order as finalize(), so at end of stream
  /// value_now() == finalize() bit for bit.
  [[nodiscard]] OnlineDpGreedyResult value_now() const;

  [[nodiscard]] std::size_t item_count() const noexcept {
    return partner_.size();
  }
  [[nodiscard]] std::size_t requests_seen() const noexcept {
    return requests_seen_;
  }
  /// Epoch counter: number of re-pairing rounds run so far.
  [[nodiscard]] std::size_t repack_rounds() const noexcept { return repacks_; }
  /// Pairs currently packed.
  [[nodiscard]] std::size_t live_packages() const noexcept {
    return live_packages_;
  }
  /// The sliding-window statistics driving the epochs (for probes/tests).
  [[nodiscard]] const WindowedCorrelation& window() const noexcept {
    return window_;
  }
  /// Steady-state allocation probe: ring-slot + scratch growth events (the
  /// trace.build_allocs analogue — constant once warm).
  [[nodiscard]] std::uint64_t alloc_events() const noexcept;

 private:
  void repack(Time now, Decision& decision);
  [[nodiscard]] BreakEvenFlowState& package_slot(ItemId item) {
    return package_flow_[package_lo_[item]];
  }
  [[nodiscard]] const BreakEvenFlowState& package_slot(ItemId item) const {
    return package_flow_[package_lo_[item]];
  }

  CostModel model_;
  OnlineDpGreedyOptions options_;
  bool never_drop_;
  double horizon_;
  double pack_rate_;

  WindowedCorrelation window_;
  std::vector<ItemId> partner_;     // item -> its packed mate (kNoItem if none)
  std::vector<ItemId> package_lo_;  // item -> its package slot
  std::vector<BreakEvenFlowState> item_flow_;
  std::vector<BreakEvenFlowState> package_flow_;  // indexed by slot
  std::vector<ItemId> free_package_slots_;  // dissolved slots, reused so the
                                            // slot table is O(k), not O(packs)
  std::size_t live_packages_ = 0;

  OnlineDpGreedyResult result_;  // running totals (also the pending sink)
  std::size_t since_repack_ = 0;
  std::size_t requests_seen_ = 0;
  std::size_t repacks_ = 0;
  Time last_time_ = 0.0;

  // Reused scratch (kept warm across pushes).
  std::vector<bool> handled_;
  std::vector<std::pair<double, std::pair<ItemId, ItemId>>> candidates_;
  std::uint64_t scratch_allocs_ = 0;
};

}  // namespace dpg
