// Online caching (extension).
//
// The paper's offline setting assumes the full trajectory is known; its
// reference [6] also gives a 3-competitive online algorithm for the single
// item case.  We implement the classic deterministic rent-or-buy rule that
// achieves small constant competitiveness under the homogeneous model:
// after a copy's last use, keep renting cache for λ/μ time units (the
// break-even horizon), then drop it — except the globally most recent copy,
// which is never dropped (the flow must stay alive somewhere).  Misses are
// served by a λ transfer from any live copy.
//
// tests/online_test.cpp checks feasibility and the empirical competitive
// ratio against the offline DP; bench/tab_online_ratio reports it.
#pragma once

#include <cstddef>

#include "core/cost_model.hpp"
#include "core/flow.hpp"
#include "core/schedule.hpp"
#include "core/types.hpp"

namespace dpg {

struct OnlineResult {
  /// Total cost paid (cache accrual + transfers), flow multiplier applied.
  Cost cost = 0.0;
  /// Undiscounted cost.
  Cost raw_cost = 0.0;
  std::size_t transfer_count = 0;
  Time cache_time = 0.0;
  /// Reconstructed schedule (validatable like the offline ones).
  Schedule schedule;
};

struct OnlineOptions {
  /// Multiplier on the λ/μ break-even holding horizon (1.0 = classic rule;
  /// small values degenerate towards the chain strategy, large towards
  /// cache-everywhere).  Must be > 0: a zero horizon would drop a copy the
  /// instant it stops being newest, which is never break-even under μ > 0.
  double hold_factor = 1.0;

  /// Throws InvalidArgument naming the offending field.  Called eagerly by
  /// every entry point (solver, state object, engine, CLI) before any work.
  void validate() const;
};

/// Runs the break-even policy over one flow, one service point at a time
/// (the policy never looks ahead).
[[nodiscard]] OnlineResult solve_online_break_even(
    const Flow& flow, const CostModel& model, std::size_t server_count,
    const OnlineOptions& options = {});

}  // namespace dpg
