// Lower bounds on the packed-model optimum C* (Section IV-B).
//
// C* is not directly computable (the packed caching problem is believed
// NP-complete, Section III-C), but Lemma 1 gives the workable bound
//   C* ≥ α · (C_1opt + C_2opt + ...)
// over the per-item offline optima.  The cut analysis adds a per-request
// floor: after trimming, every surviving request costs at least λ.  These
// bounds anchor the Theorem-1 checks in tests and bench/tab_approx_ratio.
#pragma once

#include "core/cost_model.hpp"
#include "core/request.hpp"
#include "solver/optimal_offline.hpp"

namespace dpg {

struct PackedLowerBound {
  /// Σ_i C_iopt — the non-packing optimum (also the Optimal baseline).
  Cost sum_item_optima = 0.0;
  /// α · Σ_i C_iopt — Lemma 1's lower bound on C*.
  Cost lemma1 = 0.0;
  /// The implied upper bound on any algorithm's ratio certificate:
  /// cost / lemma1 ≤ 2/α certifies Theorem 1's guarantee.
  [[nodiscard]] double certify_ratio(Cost algorithm_cost) const noexcept {
    return lemma1 > 0.0 ? algorithm_cost / lemma1 : 1.0;
  }
};

/// Computes the bound for a whole sequence (every item solved to optimality
/// by the DP; use `solve_bruteforce` manually when exhaustive anchoring is
/// wanted).
[[nodiscard]] PackedLowerBound packed_lower_bound(
    const RequestSequence& sequence, const CostModel& model,
    const OptimalOfflineOptions& dp = {});

}  // namespace dpg
