// Phase 1 of Algorithm 1: greedy disjoint pairing of correlated items, plus
// the multi-item grouping extension sketched in the paper's Remarks.
#pragma once

#include <vector>

#include "solver/correlation.hpp"

namespace dpg {

/// A package of two items with the similarity that justified it.
struct ItemPair {
  ItemId a = 0;
  ItemId b = 0;
  double jaccard = 0.0;
};

/// Result of the packing decision: disjoint pairs plus leftover singles.
struct Packing {
  std::vector<ItemPair> pairs;
  std::vector<ItemId> singles;
};

/// Algorithm 1 lines 14–27: walk pairs by descending Jaccard and pack a pair
/// when its similarity clears `theta` and neither item is packed yet.
/// `inclusive` selects `J >= theta` (Package_Served's reading, Section VI-c)
/// instead of the strict `J > theta` of Algorithm 1 line 16.
[[nodiscard]] Packing greedy_pairing(const CorrelationAnalysis& analysis,
                                     double theta, bool inclusive = false);

/// Multi-item extension: agglomerates items into groups of up to
/// `max_group_size`, merging greedily by descending pair similarity as long
/// as the *minimum* pairwise Jaccard inside the merged group stays above
/// `theta` (complete-linkage, so every member pair is genuinely correlated).
/// Groups of size 1 come back in `singles`; larger groups in `groups`.
struct GroupPacking {
  std::vector<std::vector<ItemId>> groups;  // each of size >= 2
  std::vector<ItemId> singles;
};
[[nodiscard]] GroupPacking greedy_grouping(const CorrelationAnalysis& analysis,
                                           double theta,
                                           std::size_t max_group_size);

}  // namespace dpg
