// Incremental sliding-window correlation for the online/streaming path.
//
// The offline Phase 1 (solver/correlation.hpp) counts pair co-occurrence
// over the whole trace in one batch pass.  WindowedCorrelation maintains the
// same statistics over only the last `window` requests, updated one request
// at a time: add() pushes a request's item set into a ring buffer, bumps its
// item frequencies and pair co-occurrence counts, and evicts the request
// that slid out of the window with the mirror-image decrements.  Pair counts
// live in the same sparse open-addressing PairCountMap the batch pass uses,
// so memory is O(window · mean items/request + k + observed pairs) — bounded
// by the item universe and the window, never by the stream length.
//
// jaccard() computes exactly the expression of Eq. (5) via
// jaccard_similarity(), so a decision made from this class is bit-identical
// to one made from the dense k×k window matrix the pre-streaming
// implementation kept (see tests/streaming_engine_test.cpp's goldens).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "solver/correlation.hpp"

namespace dpg {

class WindowedCorrelation {
 public:
  /// `window` is the number of most recent requests retained (>= 1).
  WindowedCorrelation(std::size_t item_count, std::size_t window);

  /// Slides the window forward by one request: counts `items` (sorted,
  /// duplicate-free — a RequestSequence row) and evicts the request that
  /// fell off the back, if the window is full.
  void add(std::span<const ItemId> items);

  /// Grows the item universe to at least `item_count` (streaming fronts
  /// discover items as they arrive).  Never shrinks.
  void ensure_item_count(std::size_t item_count);

  [[nodiscard]] std::size_t item_count() const noexcept {
    return frequency_.size();
  }
  [[nodiscard]] std::size_t window() const noexcept { return window_; }
  /// Requests currently inside the window (== min(adds, window)).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// |d_a| restricted to the window.
  [[nodiscard]] std::size_t frequency(ItemId item) const noexcept {
    return frequency_[item];
  }
  /// |(d_a, d_b)| restricted to the window.
  [[nodiscard]] std::size_t co_frequency(ItemId a, ItemId b) const noexcept {
    return co_counts_.count(PairCountMap::pack(a, b));
  }
  /// Windowed Jaccard J(a, b) — Eq. (5) over the window's counts.
  [[nodiscard]] double jaccard(ItemId a, ItemId b) const noexcept {
    return jaccard_similarity(frequency_[a], frequency_[b],
                              co_frequency(a, b));
  }

  /// Invokes `fn(a, b, co)` for every pair with co_freq > 0 in the window,
  /// in unspecified order (a < b).  The candidate enumeration of an epoch
  /// re-pack: any pair that can clear a θ > 0 threshold co-occurs, so this
  /// visits every possible candidate in O(observed pairs), not O(k²).
  template <typename Fn>
  void for_each_co_pair(Fn&& fn) const {
    co_counts_.for_each([&fn](std::uint64_t key, std::size_t count) {
      if (count > 0) {
        fn(PairCountMap::unpack_a(key), PairCountMap::unpack_b(key), count);
      }
    });
  }

  /// Ring-slot reallocation events so far — the windowed analogue of the
  /// trace.build_allocs counter: constant once every slot has seen its
  /// largest row, observable proof the window reaches an allocation-free
  /// steady state.
  [[nodiscard]] std::uint64_t alloc_events() const noexcept {
    return alloc_events_;
  }

 private:
  void bump(std::span<const ItemId> items);
  void evict(std::span<const ItemId> items);

  std::size_t window_;
  std::size_t size_ = 0;  // occupied ring slots
  std::size_t head_ = 0;  // next slot to write (== oldest when full)
  std::vector<std::vector<ItemId>> ring_;  // capacity reused across laps
  std::vector<std::size_t> frequency_;     // per-item counts in the window
  PairCountMap co_counts_;                 // pair counts in the window
  std::uint64_t alloc_events_ = 0;
};

}  // namespace dpg
