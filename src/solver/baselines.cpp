#include "solver/baselines.hpp"

#include "solver/correlation.hpp"
#include "solver/phase2_shard.hpp"
#include "solver/workspace.hpp"
#include "util/error.hpp"

namespace dpg {

namespace {

/// One per-item DP solve into the shard's workspace (flow build + DP arrays
/// all reused, see solver/workspace.hpp).
OptimalItemReport solve_item_ws(const RequestSequence& sequence,
                                const CostModel& model, ItemId item,
                                const OptimalOfflineOptions& dp,
                                SolverWorkspace& ws) {
  OptimalItemReport report;
  report.item = item;
  report.accesses = sequence.item_frequency(item);
  make_item_flow(sequence, item, ws.flow);
  SolveResult solved =
      solve_optimal_offline(ws.flow, model, sequence.server_count(), dp, &ws);
  report.cost = solved.cost;
  report.schedule = std::move(solved.schedule);
  return report;
}

PackageServedPair solve_pair_package_served_ws(const RequestSequence& sequence,
                                               const CostModel& model,
                                               ItemPair pair,
                                               const OptimalOfflineOptions& dp,
                                               SolverWorkspace& ws) {
  PackageServedPair out;
  out.pair = pair;
  out.total_accesses =
      sequence.item_frequency(pair.a) + sequence.item_frequency(pair.b);
  const Flow union_flow = make_union_flow(sequence, {pair.a, pair.b});
  SolveResult solved =
      solve_optimal_offline(union_flow, model, sequence.server_count(), dp, &ws);
  out.cost = solved.cost;  // priced at the 2α package rate
  out.schedule = std::move(solved.schedule);
  return out;
}

}  // namespace

double OptimalBaselineResult::pair_ave_cost(ItemId a, ItemId b) const {
  Cost cost = 0.0;
  std::size_t accesses = 0;
  for (const OptimalItemReport& report : items) {
    if (report.item == a || report.item == b) {
      cost += report.cost;
      accesses += report.accesses;
    }
  }
  return accesses == 0 ? 0.0 : cost / static_cast<double>(accesses);
}

OptimalBaselineResult solve_optimal_baseline(const RequestSequence& sequence,
                                             const CostModel& model,
                                             const OptimalOfflineOptions& dp,
                                             ThreadPool* pool) {
  model.validate();
  OptimalBaselineResult result;
  result.total_item_accesses = sequence.total_item_accesses();
  result.items.resize(sequence.item_count());

  for_each_flow_sharded(pool, sequence.item_count(),
                        [&](std::size_t i, SolverWorkspace& ws) {
                          result.items[i] = solve_item_ws(
                              sequence, model, static_cast<ItemId>(i), dp, ws);
                        });

  for (const OptimalItemReport& report : result.items) {
    result.total_cost += report.cost;
  }
  result.ave_cost =
      result.total_item_accesses == 0
          ? 0.0
          : result.total_cost / static_cast<double>(result.total_item_accesses);
  return result;
}

PackageServedPair solve_pair_package_served(const RequestSequence& sequence,
                                            const CostModel& model,
                                            ItemPair pair,
                                            const OptimalOfflineOptions& dp) {
  model.validate();
  SolverWorkspace ws;
  return solve_pair_package_served_ws(sequence, model, pair, dp, ws);
}

PackageServedResult solve_package_served(const RequestSequence& sequence,
                                         const CostModel& model, double theta,
                                         const OptimalOfflineOptions& dp,
                                         ThreadPool* pool) {
  model.validate();
  require(theta >= 0.0 && theta <= 1.0,
          "solve_package_served: theta must be in [0, 1]");
  PackageServedResult result;
  result.total_item_accesses = sequence.total_item_accesses();

  const CorrelationAnalysis analysis(sequence);
  result.packing = greedy_pairing(analysis, theta, /*inclusive=*/true);

  const std::size_t pair_count = result.packing.pairs.size();
  const std::size_t single_count = result.packing.singles.size();
  result.pairs.resize(pair_count);
  result.singles.resize(single_count);

  for_each_flow_sharded(
      pool, pair_count + single_count,
      [&](std::size_t i, SolverWorkspace& ws) {
        if (i < pair_count) {
          result.pairs[i] = solve_pair_package_served_ws(
              sequence, model, result.packing.pairs[i], dp, ws);
        } else {
          result.singles[i - pair_count] =
              solve_item_ws(sequence, model,
                            result.packing.singles[i - pair_count], dp, ws);
        }
      });

  for (const PackageServedPair& p : result.pairs) result.total_cost += p.cost;
  for (const OptimalItemReport& s : result.singles) result.total_cost += s.cost;
  result.ave_cost =
      result.total_item_accesses == 0
          ? 0.0
          : result.total_cost / static_cast<double>(result.total_item_accesses);
  return result;
}

}  // namespace dpg
