// Reusable scratch state for the per-flow solvers.
//
// Phase 2 of DP_Greedy runs one independent optimal-offline DP per package
// and per unpacked item.  Each solve needs the same family of buffers — the
// flow being built, the Section-V pre-scan index, the w/W/C/choice arrays
// and the suffix-min stack — and a fresh solve would otherwise allocate all
// of them from scratch.  A SolverWorkspace owns that scratch; threading one
// through repeated solves makes the steady state allocation-free: every
// buffer is assign()ed/clear()ed in place and only grows when a flow larger
// than anything seen before arrives.
//
// Contract: a workspace may be reused across any number of solves of any
// flows (results are bit-identical to workspace-free solves — see
// tests/optimal_offline_test.cpp), but it must not be shared between
// concurrent solves.  In parallel Phase 2 each worker chunk owns one.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/flow.hpp"
#include "core/request_index.hpp"
#include "core/types.hpp"

namespace dpg {

/// Per-node backtracking record of the offline DP (C(i) recurrence).
struct DpChoice {
  bool via_line = false;       // true: D(i) with split k; false: Tr(i)
  std::int32_t split_k = -1;   // predecessor state for the D choice
};

/// Monotonic-stack suffix-minimum structure over values v_k = C(k) − W(k).
/// Push happens in index order; query(l) returns min_{k in [l, last]} v_k.
/// After pops the stack keeps (index, value) with values strictly increasing
/// bottom→top, so the answer to query(l) is the first entry with index >= l.
class SuffixMin {
 public:
  void clear() noexcept { entries_.clear(); }

  void push(std::int32_t index, double value) {
    while (!entries_.empty() && entries_.back().second >= value) {
      entries_.pop_back();
    }
    entries_.emplace_back(index, value);
  }

  [[nodiscard]] std::pair<std::int32_t, double> query(std::int32_t lo) const {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), lo,
        [](const std::pair<std::int32_t, double>& e, std::int32_t l) {
          return e.first < l;
        });
    if (it == entries_.end()) return {-1, kInfiniteCost};
    return *it;
  }

 private:
  std::vector<std::pair<std::int32_t, double>> entries_;
};

/// Per-event columns of the kernelized singleton pass (solver/dp_greedy.cpp):
/// a scalar recency pass fills the gather columns, a branch-light pass turns
/// them into costs and choices, and a serial pass accumulates — same order,
/// same bits as the fused reference loop.
struct SingletonScratch {
  std::vector<Time> time;        // event time t_e
  std::vector<Time> prev_time;   // previous event of the item (any server)
  std::vector<Time> same_time;   // last event on this server, -1 if none
  std::vector<Cost> cost;        // chosen serve cost
  std::vector<std::uint8_t> choice;      // kernels::ServeChoiceIndex
  std::vector<std::uint8_t> is_package;  // event already paid by the package DP
};

/// The reusable scratch of one solver "lane".
struct SolverWorkspace {
  /// Flow-build buffer: make_item_flow / make_package_flow write here.
  Flow flow;

  /// Section-V pre-scan index, rebuilt in place per solve.
  RequestIndex index;

  // Offline-DP arrays, assign()ed per solve.
  std::vector<Cost> w;         // per-node intermediate service cost w(j)
  std::vector<Cost> w_prefix;  // prefix sums W(i)
  std::vector<Cost> c;         // optimal costs C(i)
  std::vector<DpChoice> choice;
  SuffixMin suffix;

  // Kernel-path columns (solver/kernels.hpp): same-server predecessor,
  // link costs μ·Δt, and the dense v_k = C(k) − W(k) the window scan reads.
  std::vector<std::int32_t> prev;
  std::vector<Cost> link;
  std::vector<Cost> v;

  /// Per-server recency scratch for the Phase-2 greedy singleton pass.
  std::vector<Time> server_times;

  /// Event columns for the kernelized singleton pass.
  SingletonScratch singles;
};

}  // namespace dpg
