#include "solver/greedy.hpp"

#include "core/request_index.hpp"
#include "util/error.hpp"

namespace dpg {

SolveResult solve_greedy(const Flow& flow, const CostModel& model,
                         std::size_t server_count) {
  model.validate();
  validate_flow(flow);
  SolveResult result;
  result.schedule = Schedule(flow.group_size);
  if (flow.empty()) return result;

  const RequestIndex index(flow, server_count);
  Cost total = 0.0;
  for (std::size_t i = 1; i < index.node_count(); ++i) {
    const Time t_i = index.time_of(i);
    const ServerId s_i = index.server_of(i);
    const Time t_prev = index.time_of(i - 1);
    const ServerId s_prev = index.server_of(i - 1);

    const Cost via_transfer =
        model.mu * (t_i - t_prev) + (s_i != s_prev ? model.lambda : 0.0);
    Cost via_cache = kInfiniteCost;
    const std::int32_t p = index.prev_same_server(i);
    if (p >= 0) {
      via_cache = model.mu * (t_i - index.time_of(static_cast<std::size_t>(p)));
    }

    if (via_cache <= via_transfer) {
      total += via_cache;
      result.schedule.add_segment(s_i, index.time_of(static_cast<std::size_t>(p)),
                                  t_i);
    } else {
      total += via_transfer;
      result.schedule.add_segment(s_prev, t_prev, t_i);
      if (s_i != s_prev) result.schedule.add_transfer(s_prev, s_i, t_i);
    }
  }
  result.raw_cost = total;
  result.cost = model.flow_multiplier(flow.group_size) * total;
  return result;
}

SolveResult solve_chain(const Flow& flow, const CostModel& model) {
  model.validate();
  validate_flow(flow);
  SolveResult result;
  result.schedule = Schedule(flow.group_size);
  Time prev_time = 0.0;
  ServerId prev_server = kOriginServer;
  for (const ServicePoint& point : flow.points) {
    result.raw_cost += model.mu * (point.time - prev_time);
    result.schedule.add_segment(prev_server, prev_time, point.time);
    if (point.server != prev_server) {
      result.raw_cost += model.lambda;
      result.schedule.add_transfer(prev_server, point.server, point.time);
    }
    prev_time = point.time;
    prev_server = point.server;
  }
  result.cost = model.flow_multiplier(flow.group_size) * result.raw_cost;
  return result;
}

SolveResult solve_greedy_heterogeneous(const Flow& flow,
                                       const HeterogeneousCostModel& model) {
  validate_flow(flow);
  SolveResult result;
  result.schedule = Schedule(flow.group_size);
  if (flow.empty()) return result;

  const RequestIndex index(flow, model.server_count());
  Cost total = 0.0;
  for (std::size_t i = 1; i < index.node_count(); ++i) {
    const Time t_i = index.time_of(i);
    const ServerId s_i = index.server_of(i);
    const Time t_prev = index.time_of(i - 1);
    const ServerId s_prev = index.server_of(i - 1);

    const Cost via_transfer =
        model.mu(s_prev) * (t_i - t_prev) + model.lambda(s_prev, s_i);
    Cost via_cache = kInfiniteCost;
    const std::int32_t p = index.prev_same_server(i);
    if (p >= 0) {
      via_cache =
          model.mu(s_i) * (t_i - index.time_of(static_cast<std::size_t>(p)));
    }

    if (via_cache <= via_transfer) {
      total += via_cache;
      result.schedule.add_segment(s_i, index.time_of(static_cast<std::size_t>(p)),
                                  t_i);
    } else {
      total += via_transfer;
      result.schedule.add_segment(s_prev, t_prev, t_i);
      if (s_i != s_prev) result.schedule.add_transfer(s_prev, s_i, t_i);
    }
  }
  result.raw_cost = total;
  result.cost = total;  // heterogeneous flows are priced at face value
  return result;
}

}  // namespace dpg
