// The two comparison algorithms of Section VI:
//
//   * Optimal — the non-packing extreme: every item is served individually
//     by the optimal offline DP of [6].  Optimal for single-item caching but
//     blind to packing discounts.
//   * Package_Served — the always-pack extreme: for every pair whose Jaccard
//     clears the threshold, ALL requests touching either item are served by
//     shipping/caching the two-item package at the 2α rate.
#pragma once

#include <vector>

#include "core/cost_model.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"
#include "solver/optimal_offline.hpp"
#include "solver/pairing.hpp"

namespace dpg {

class ThreadPool;

/// Per-item outcome of the non-packing Optimal baseline.
struct OptimalItemReport {
  ItemId item = 0;
  Cost cost = 0.0;
  std::size_t accesses = 0;
  Schedule schedule;
};

struct OptimalBaselineResult {
  std::vector<OptimalItemReport> items;
  Cost total_cost = 0.0;
  std::size_t total_item_accesses = 0;
  double ave_cost = 0.0;

  /// Pair-local ave_cost for Figs. 11/13: (C_a + C_b) / (|d_a| + |d_b|).
  [[nodiscard]] double pair_ave_cost(ItemId a, ItemId b) const;
};

[[nodiscard]] OptimalBaselineResult solve_optimal_baseline(
    const RequestSequence& sequence, const CostModel& model,
    const OptimalOfflineOptions& dp = {}, ThreadPool* pool = nullptr);

/// Per-pair outcome of Package_Served.
struct PackageServedPair {
  ItemPair pair;
  Cost cost = 0.0;                 // 2α-discounted DP over the union flow
  std::size_t total_accesses = 0;  // |d_a| + |d_b|
  Schedule schedule;

  [[nodiscard]] double ave_cost() const noexcept {
    return total_accesses == 0 ? 0.0
                               : cost / static_cast<double>(total_accesses);
  }
};

struct PackageServedResult {
  Packing packing;  // inclusive threshold (J >= θ)
  std::vector<PackageServedPair> pairs;
  std::vector<OptimalItemReport> singles;  // unpacked items, served by DP
  Cost total_cost = 0.0;
  std::size_t total_item_accesses = 0;
  double ave_cost = 0.0;
};

[[nodiscard]] PackageServedResult solve_package_served(
    const RequestSequence& sequence, const CostModel& model, double theta,
    const OptimalOfflineOptions& dp = {}, ThreadPool* pool = nullptr);

/// Package_Served for one explicit pair (figure harnesses sweep pairs
/// directly): the union flow of requests touching either item, served as a
/// package.
[[nodiscard]] PackageServedPair solve_pair_package_served(
    const RequestSequence& sequence, const CostModel& model, ItemPair pair,
    const OptimalOfflineOptions& dp = {});

}  // namespace dpg
