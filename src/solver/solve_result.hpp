// Common result type returned by the per-flow solvers.
#pragma once

#include "core/schedule.hpp"
#include "core/types.hpp"

namespace dpg {

/// Outcome of solving one flow (item or package).
struct SolveResult {
  /// Undiscounted cost (μ/λ at face value), i.e. the DP objective before
  /// the flow multiplier is applied.
  Cost raw_cost = 0.0;

  /// Discounted cost: raw_cost × CostModel::flow_multiplier(group_size).
  Cost cost = 0.0;

  /// The schedule realizing the cost (feasibility-checkable via
  /// Schedule::validate against the same flow).
  Schedule schedule;
};

}  // namespace dpg
