// The cut (remove) operation of the approximation analysis (Section IV-B,
// Figs. 5–6), implemented as an explicit transformation so the proof's
// "critical state" is machine-checkable:
//
//   * requests with μ(t_i − t_{p(i)}) ≤ λ cost the same in the optimal and
//     the greedy schedule (both cache locally); their cost is cut entirely;
//   * requests with μ(t_i − t_{i−1}) > λ have a single copy alive in
//     (t_{i−1}, t_i) in both schedules; the long cache line is trimmed so
//     the remaining cache cost equals λ.
//
// After cutting, every surviving request costs at least λ under the optimal
// schedule and at most 2λ under the greedy one — which is exactly Eq. (7):
// C'_G / C'_opt ≤ 2n'λ / n'λ = 2.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cost_model.hpp"
#include "core/flow.hpp"

namespace dpg {

/// Classification of one service point under the cut rules.
enum class CutClass {
  kRemoved,      // case 1: local gap ≤ λ — identical in both schedules, cut
  kTrimmed,      // case 2: predecessor gap > λ — cache line trimmed to λ
  kUntouched,    // neither rule applies; kept at its greedy step cost
};

struct CutEntry {
  std::size_t point_index = 0;
  CutClass cut = CutClass::kUntouched;
  Cost greedy_step = 0.0;          // original greedy decision cost
  Cost trimmed_greedy_step = 0.0;  // after the cut operation
};

struct CutAnalysis {
  std::vector<CutEntry> entries;
  /// n' — service points surviving the cut.
  std::size_t surviving_count = 0;
  /// Σ trimmed greedy step costs (the C'_G of Eq. 7).
  Cost trimmed_greedy_cost = 0.0;
  /// The analysis' bounds for the surviving requests.
  Cost per_request_optimal_floor = 0.0;  // λ
  Cost per_request_greedy_ceiling = 0.0; // 2λ
};

/// Runs the cut operation over one flow's greedy decisions.
[[nodiscard]] CutAnalysis cut_operation(const Flow& flow,
                                        const CostModel& model,
                                        std::size_t server_count);

}  // namespace dpg
