// Exhaustive optimal solver for small flows — the yardstick the tests use to
// validate the DP's optimality claim and the 2/α bound (not part of the
// paper's toolchain; enumeration is exponential).
//
// Search space: standard-form "service-tree" schedules.  Each service point
// picks a parent event (the origin or any earlier service point); the copy is
// held at the parent's server from the parent's time to the child's time and
// transferred if the servers differ.  Cache intervals on the same server are
// unioned (a server never holds two copies of one flow), which is exactly the
// sharing that makes greedy sub-optimal.  Multi-hop relays and cache lines on
// never-requested servers are dominated under the homogeneous model, so this
// space contains an optimal schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cost_model.hpp"
#include "core/flow.hpp"
#include "solver/solve_result.hpp"

namespace dpg {

struct BruteForceResult {
  Cost raw_cost = 0.0;
  Cost cost = 0.0;
  /// parents[i] = chosen parent event of service point i (0 = origin,
  /// j >= 1 = service point j-1).
  std::vector<std::uint8_t> parents;
  Schedule schedule;
};

/// Enumerates all parent assignments. Throws InvalidArgument when the flow
/// has more than `max_points` service points (default keeps runtime sane).
[[nodiscard]] BruteForceResult solve_bruteforce(const Flow& flow,
                                                const CostModel& model,
                                                std::size_t max_points = 10);

/// Prices one explicit parent assignment (exposed for tests).
[[nodiscard]] Cost price_parent_assignment(
    const Flow& flow, const CostModel& model,
    const std::vector<std::uint8_t>& parents);

}  // namespace dpg
