// Time-resolved correlation (extension).
//
// Algorithm 1 decides packing from whole-trace Jaccard similarities.  On
// non-stationary workloads (commute bursts, breaking news) a pair can be
// intensely correlated for minutes yet dilute to nothing over a day; the
// edge_cdn example shows the online variant exploiting exactly this.  This
// module computes sliding-window Jaccard series so that dilution can be
// measured and the right θ granularity chosen.
#pragma once

#include <vector>

#include "core/request.hpp"

namespace dpg {

struct WindowedJaccardPoint {
  Time time = 0.0;      // time of the window's last request
  double jaccard = 0.0; // Jaccard inside the window
};

/// Sliding-window Jaccard of pair (a, b): windows of `window` consecutive
/// requests, advanced by `stride` requests.  Empty result if the trace has
/// fewer than `window` requests.
[[nodiscard]] std::vector<WindowedJaccardPoint> windowed_jaccard_series(
    const RequestSequence& sequence, ItemId a, ItemId b, std::size_t window,
    std::size_t stride);

struct DilutionReport {
  double global_jaccard = 0.0;  // whole-trace J (what Algorithm 1 sees)
  double peak_windowed = 0.0;   // max windowed J
  double mean_windowed = 0.0;
  /// peak − global: how much burst-local correlation the global statistic
  /// hides.  ~0 on stationary traces, large on bursty ones.
  [[nodiscard]] double dilution() const noexcept {
    return peak_windowed - global_jaccard;
  }
};

[[nodiscard]] DilutionReport measure_dilution(const RequestSequence& sequence,
                                              ItemId a, ItemId b,
                                              std::size_t window);

}  // namespace dpg
