// Phase 1 ingredients: item frequencies, co-occurrence counts and the
// Jaccard similarity matrix A(i,j) of Section IV-A (Eqs. 4–5).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/request.hpp"
#include "core/types.hpp"

namespace dpg {

/// One item pair with its correlation statistics (a row of Fig. 10).
struct PairCorrelation {
  ItemId a = 0;
  ItemId b = 0;
  std::size_t freq_a = 0;      // |d_a|
  std::size_t freq_b = 0;      // |d_b|
  std::size_t co_freq = 0;     // |(d_a, d_b)|
  double jaccard = 0.0;        // Eq. (5)
};

/// All-pairs correlation analysis of a request sequence.
class CorrelationAnalysis {
 public:
  explicit CorrelationAnalysis(const RequestSequence& sequence);

  [[nodiscard]] std::size_t item_count() const noexcept { return k_; }

  /// J(a, b); J(a, a) = 1 by definition (Eq. 4). Symmetric.
  [[nodiscard]] double jaccard(ItemId a, ItemId b) const;

  /// |d_item|.
  [[nodiscard]] std::size_t frequency(ItemId item) const;

  /// |(d_a, d_b)|.
  [[nodiscard]] std::size_t co_frequency(ItemId a, ItemId b) const;

  /// Every unordered pair (a < b), sorted by descending Jaccard, ties broken
  /// by (a, b) ascending — the sorted dictionary of Algorithm 1 line 14.
  [[nodiscard]] const std::vector<PairCorrelation>& sorted_pairs() const noexcept {
    return sorted_pairs_;
  }

  /// Pairs with co_freq > 0 and Jaccard >= `min_jaccard`, most similar first
  /// (the "frequent dataset" view of Fig. 10).
  [[nodiscard]] std::vector<PairCorrelation> frequent_pairs(
      double min_jaccard) const;

  /// Tabular dump for harnesses.
  [[nodiscard]] std::string to_string(std::size_t max_rows = 20) const;

 private:
  std::size_t k_;
  std::vector<std::size_t> frequency_;
  std::vector<std::size_t> co_frequency_;  // upper-triangular, row-major
  std::vector<PairCorrelation> sorted_pairs_;

  [[nodiscard]] std::size_t tri_index(ItemId a, ItemId b) const;
};

/// Standalone Jaccard from counts (Eq. 5); 0 when both frequencies are 0.
[[nodiscard]] double jaccard_similarity(std::size_t freq_a, std::size_t freq_b,
                                        std::size_t co_freq) noexcept;

}  // namespace dpg
