// Phase 1 ingredients: item frequencies, co-occurrence counts and the
// Jaccard similarity matrix A(i,j) of Section IV-A (Eqs. 4–5).
//
// Two interchangeable representations back the analysis:
//   * dense  — the full k(k−1)/2 upper triangle, every pair materialized
//     (the seed implementation; best for small k where the triangle fits
//     comfortably and zero-pair rows are cheap),
//   * sparse — only pairs actually co-requested are counted, in an
//     open-addressing hash keyed by the packed (a, b) pair, optionally
//     sharded over a ThreadPool and merged.  At k = 10⁴ the dense triangle
//     is ~5·10⁷ structs; real co-access patterns touch a vanishing fraction
//     of them, which is the sparsity this path exploits.
// Both produce the identical descending-Jaccard pair dictionary for every
// pair with co_freq > 0 (cross-checked in tests); pairs that never co-occur
// have J = 0 and exist only in the dense view.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/request.hpp"
#include "core/types.hpp"

namespace dpg {

class ThreadPool;

/// One item pair with its correlation statistics (a row of Fig. 10).
struct PairCorrelation {
  ItemId a = 0;
  ItemId b = 0;
  std::size_t freq_a = 0;      // |d_a|
  std::size_t freq_b = 0;      // |d_b|
  std::size_t co_freq = 0;     // |(d_a, d_b)|
  double jaccard = 0.0;        // Eq. (5)
};

/// Open-addressing counter over packed (a, b) pair keys (a < b), linear
/// probing, power-of-two capacity.  The per-worker shard and merged store of
/// the sparse Phase-1 path; values are exact counts, so shard-and-merge is
/// bit-identical to serial counting.
class PairCountMap {
 public:
  /// Packs an unordered pair into the 64-bit key (smaller id in the high
  /// word, so key order == (a, b) lexicographic order).
  static std::uint64_t pack(ItemId a, ItemId b) noexcept {
    if (a > b) {
      const ItemId t = a;
      a = b;
      b = t;
    }
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  static ItemId unpack_a(std::uint64_t key) noexcept {
    return static_cast<ItemId>(key >> 32);
  }
  static ItemId unpack_b(std::uint64_t key) noexcept {
    return static_cast<ItemId>(key & 0xffffffffull);
  }

  explicit PairCountMap(std::size_t expected_pairs = 0);

  /// Adds `delta` to the pair's counter, inserting it at 0 first if new.
  void add(std::uint64_t key, std::size_t delta = 1);

  /// Subtracts `delta` from the pair's counter (the evict half of a sliding
  /// window — see solver/windowed_correlation.hpp).  The pair must have been
  /// added at least `delta` times; its slot stays occupied at 0 so the
  /// stored-pair universe only ever grows (bounded by k(k−1)/2, never by the
  /// stream length).
  void sub(std::uint64_t key, std::size_t delta = 1);

  /// The pair's counter; 0 when the pair was never added.
  [[nodiscard]] std::size_t count(std::uint64_t key) const noexcept;

  /// Number of distinct pairs stored.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Folds `other` into this map (the merge step of the sharded count).
  void merge(const PairCountMap& other);

  /// Invokes `fn(key, count)` for every stored pair, in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmptyKey) fn(keys_[i], counts_[i]);
    }
  }

 private:
  static constexpr std::uint64_t kEmptyKey = ~0ull;

  [[nodiscard]] std::size_t slot_of(std::uint64_t key) const noexcept;
  void grow();

  std::vector<std::uint64_t> keys_;
  std::vector<std::size_t> counts_;
  std::size_t size_ = 0;
};

/// How CorrelationAnalysis stores and materializes the pair statistics.
struct CorrelationOptions {
  enum class Mode {
    kAuto,    // dense while k <= dense_max_items, sparse beyond
    kDense,   // always the full triangle
    kSparse,  // always the hash of observed pairs
  };
  Mode mode = Mode::kAuto;

  /// kAuto switches to sparse above this item count (the dense triangle is
  /// k(k−1)/2 entries; 128 items ≈ 8k pairs, still trivially cheap).
  std::size_t dense_max_items = 128;

  /// When set, the counting pass shards the request sequence over this pool
  /// (one PairCountMap per shard, merged after the join). Counts are exact,
  /// so the result is bit-identical to the serial pass.
  ThreadPool* pool = nullptr;
};

/// All-pairs correlation analysis of a request sequence.
class CorrelationAnalysis {
 public:
  explicit CorrelationAnalysis(const RequestSequence& sequence,
                               const CorrelationOptions& options = {});

  [[nodiscard]] std::size_t item_count() const noexcept { return k_; }

  /// True when the sparse (observed-pairs-only) representation is active.
  [[nodiscard]] bool is_sparse() const noexcept { return sparse_; }

  /// Number of pairs with co_freq > 0 (== sorted_pairs().size() in sparse
  /// mode; the "peak pair count" benchmarked by bench/bm_phase1).
  [[nodiscard]] std::size_t observed_pair_count() const noexcept {
    return observed_pair_count_;
  }

  /// J(a, b); J(a, a) = 1 by definition (Eq. 4). Symmetric.
  [[nodiscard]] double jaccard(ItemId a, ItemId b) const;

  /// |d_item|.
  [[nodiscard]] std::size_t frequency(ItemId item) const;

  /// |(d_a, d_b)|.
  [[nodiscard]] std::size_t co_frequency(ItemId a, ItemId b) const;

  /// The sorted pair dictionary of Algorithm 1 line 14: descending Jaccard,
  /// ties broken by (a, b) ascending.  Dense mode materializes every
  /// unordered pair (a < b); sparse mode only the pairs with co_freq > 0 —
  /// identical prefixes for every pair that actually co-occurs, which is all
  /// greedy_pairing can ever pack at θ > 0.
  [[nodiscard]] const std::vector<PairCorrelation>& sorted_pairs() const noexcept {
    return sorted_pairs_;
  }

  /// Pairs with co_freq > 0 and Jaccard >= `min_jaccard`, most similar first
  /// (the "frequent dataset" view of Fig. 10).
  [[nodiscard]] std::vector<PairCorrelation> frequent_pairs(
      double min_jaccard) const;

  /// Tabular dump for harnesses.
  [[nodiscard]] std::string to_string(std::size_t max_rows = 20) const;

 private:
  std::size_t k_;
  bool sparse_ = false;
  std::size_t observed_pair_count_ = 0;
  std::vector<std::size_t> frequency_;
  std::vector<std::size_t> co_frequency_;  // dense: upper-triangular, row-major
  PairCountMap co_counts_;                 // sparse: observed pairs only
  std::vector<PairCorrelation> sorted_pairs_;

  void count_dense(const RequestSequence& sequence);
  void count_sparse(const RequestSequence& sequence, ThreadPool* pool);

  [[nodiscard]] std::size_t tri_index(ItemId a, ItemId b) const noexcept;
  [[nodiscard]] PairCorrelation make_pair(ItemId a, ItemId b,
                                          std::size_t co) const noexcept;
};

/// Standalone Jaccard from counts (Eq. 5); 0 when both frequencies are 0.
[[nodiscard]] double jaccard_similarity(std::size_t freq_a, std::size_t freq_b,
                                        std::size_t co_freq) noexcept;

}  // namespace dpg
