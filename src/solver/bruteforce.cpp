#include "solver/bruteforce.hpp"

#include <algorithm>

#include "core/interval_set.hpp"
#include "util/error.hpp"

namespace dpg {

namespace {

struct Event {
  ServerId server;
  Time time;
};

Cost price(const std::vector<Event>& events,
           const std::vector<std::uint8_t>& parents, const CostModel& model,
           IntervalSet* scratch_by_server, std::size_t server_count) {
  // Gather the required hold-intervals per server, then union them.
  for (std::size_t s = 0; s < server_count; ++s) scratch_by_server[s].clear();
  std::size_t transfer_count = 0;
  for (std::size_t child = 1; child < events.size(); ++child) {
    const Event& c = events[child];
    const Event& p = events[parents[child - 1]];
    scratch_by_server[p.server].add(p.time, c.time);
    if (p.server != c.server) ++transfer_count;
  }
  Time cache_time = 0.0;
  for (std::size_t s = 0; s < server_count; ++s) {
    cache_time += scratch_by_server[s].union_length();
  }
  return model.mu * cache_time +
         model.lambda * static_cast<double>(transfer_count);
}

}  // namespace

Cost price_parent_assignment(const Flow& flow, const CostModel& model,
                             const std::vector<std::uint8_t>& parents) {
  require(parents.size() == flow.points.size(),
          "price_parent_assignment: one parent per service point required");
  std::vector<Event> events;
  events.push_back(Event{kOriginServer, 0.0});
  ServerId max_server = kOriginServer;
  for (const ServicePoint& p : flow.points) {
    events.push_back(Event{p.server, p.time});
    max_server = std::max(max_server, p.server);
  }
  for (std::size_t i = 0; i < parents.size(); ++i) {
    require(parents[i] <= i, "price_parent_assignment: parent must precede child");
  }
  std::vector<IntervalSet> scratch(
      static_cast<std::size_t>(max_server) + 1);
  return price(events, parents, model, scratch.data(), scratch.size());
}

BruteForceResult solve_bruteforce(const Flow& flow, const CostModel& model,
                                  std::size_t max_points) {
  model.validate();
  validate_flow(flow);
  const std::size_t n = flow.points.size();
  require(n <= max_points,
          "solve_bruteforce: flow too large for exhaustive search (" +
              std::to_string(n) + " > " + std::to_string(max_points) + ")");

  BruteForceResult best;
  best.schedule = Schedule(flow.group_size);
  if (n == 0) return best;

  std::vector<Event> events;
  events.push_back(Event{kOriginServer, 0.0});
  ServerId max_server = kOriginServer;
  for (const ServicePoint& p : flow.points) {
    events.push_back(Event{p.server, p.time});
    max_server = std::max(max_server, p.server);
  }
  std::vector<IntervalSet> scratch(
      static_cast<std::size_t>(max_server) + 1);

  std::vector<std::uint8_t> parents(n, 0);
  best.raw_cost = kInfiniteCost;
  // Odometer over the mixed-radix parent space: parents[i] in [0, i].
  for (;;) {
    const Cost cost =
        price(events, parents, model, scratch.data(), scratch.size());
    if (cost < best.raw_cost) {
      best.raw_cost = cost;
      best.parents = parents;
    }
    // Advance the odometer: parents[i] ranges over event indices 0..i.
    std::size_t digit = 0;
    while (digit < n) {
      if (parents[digit] < digit) {
        ++parents[digit];
        break;
      }
      parents[digit] = 0;
      ++digit;
    }
    if (digit == n) break;
  }

  best.cost = model.flow_multiplier(flow.group_size) * best.raw_cost;
  // Materialize the winning assignment as a Schedule.
  for (std::size_t child = 1; child <= n; ++child) {
    const Event& c = events[child];
    const Event& p = events[best.parents[child - 1]];
    best.schedule.add_segment(p.server, p.time, c.time);
    if (p.server != c.server) best.schedule.add_transfer(p.server, c.server, c.time);
  }
  return best;
}

}  // namespace dpg
