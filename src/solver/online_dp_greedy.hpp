// Online DP_Greedy (extension).
//
// The paper assumes the full trajectory is known ("93% of human behaviour
// is predictable"); this module drops that assumption.  Correlation is
// estimated from a sliding window of past requests; a pair is packed when
// its windowed Jaccard exceeds θ (and unpacked when it decays below θ/2,
// hysteresis to avoid thrashing).  Serving is the break-even rent-or-buy
// rule per flow: one replica set for each current package (at the 2α rate)
// and one per unpacked item, with the package-fetch option (2αλ) available
// to single-item requests of a packed pair.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cost_model.hpp"
#include "core/request.hpp"
#include "core/types.hpp"

namespace dpg {

struct OnlineDpGreedyOptions {
  double theta = 0.3;
  /// Sliding window length (number of past requests) for Jaccard estimates.
  std::size_t window = 200;
  /// Re-evaluate pairings every `repack_interval` requests.
  std::size_t repack_interval = 50;
  /// Multiplier on the λ/μ break-even holding horizon.  Must be > 0.
  double hold_factor = 1.0;

  /// Throws InvalidArgument naming the offending field.  Called eagerly by
  /// every entry point (solver, state object, engine, CLI) before any work.
  void validate() const;
};

struct OnlineDpGreedyResult {
  Cost total_cost = 0.0;
  /// λ-side of total_cost: wire transfers, package assembly moves and
  /// package fetches (the μ-side is total_cost − transfer_cost).
  Cost transfer_cost = 0.0;
  double ave_cost = 0.0;
  std::size_t total_item_accesses = 0;
  std::size_t pack_events = 0;    // pair formations over the run
  std::size_t unpack_events = 0;  // pair dissolutions
  std::size_t package_fetches = 0;
  std::size_t transfers = 0;
  Time cache_time = 0.0;
};

/// Processes the sequence strictly left to right (no lookahead).
[[nodiscard]] OnlineDpGreedyResult solve_online_dp_greedy(
    const RequestSequence& sequence, const CostModel& model,
    const OnlineDpGreedyOptions& options = {});

}  // namespace dpg
