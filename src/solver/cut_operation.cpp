#include "solver/cut_operation.hpp"

#include <algorithm>

#include "core/request_index.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace dpg {

namespace {

const obs::Counter g_cut_ops = obs::counter("solver.cut_ops");
const obs::Counter g_cut_removed = obs::counter("solver.cut_removed");
const obs::Counter g_cut_trimmed = obs::counter("solver.cut_trimmed");
const obs::Counter g_cut_untouched = obs::counter("solver.cut_untouched");

}  // namespace

CutAnalysis cut_operation(const Flow& flow, const CostModel& model,
                          std::size_t server_count) {
  model.validate();
  validate_flow(flow);
  const obs::TraceSpan span("solver/cut_operation");
  CutAnalysis analysis;
  analysis.per_request_optimal_floor = model.lambda;
  analysis.per_request_greedy_ceiling = 2.0 * model.lambda;
  if (flow.empty()) return analysis;

  const RequestIndex index(flow, server_count);
  for (std::size_t i = 1; i < index.node_count(); ++i) {
    const Time t_i = index.time_of(i);
    const ServerId s_i = index.server_of(i);
    const Time t_prev = index.time_of(i - 1);
    const ServerId s_prev = index.server_of(i - 1);

    // The greedy decision (same rule as solver/greedy.cpp).
    const Cost via_transfer =
        model.mu * (t_i - t_prev) + (s_i != s_prev ? model.lambda : 0.0);
    Cost via_cache = kInfiniteCost;
    const std::int32_t p = index.prev_same_server(i);
    if (p >= 0) {
      via_cache = model.mu * (t_i - index.time_of(static_cast<std::size_t>(p)));
    }
    const Cost greedy_step = std::min(via_cache, via_transfer);

    CutEntry entry;
    entry.point_index = i - 1;
    entry.greedy_step = greedy_step;

    if (via_cache <= model.lambda) {
      // Case 1: both schedules serve this request by the same short local
      // cache line; the cut removes it from both sides of the ratio.
      entry.cut = CutClass::kRemoved;
      entry.trimmed_greedy_step = 0.0;
    } else if (model.mu * (t_i - t_prev) > model.lambda) {
      // Case 2: only one copy exists in (t_{i-1}, t_i); the long cache
      // line serving this request is trimmed so that its cache part
      // equals exactly λ.  Whatever option greedy chose, its cache part
      // exceeds λ here, so trimming strictly reduces the step, to at most
      // λ (cache) + λ (transfer) = 2λ.
      entry.cut = CutClass::kTrimmed;
      const bool served_by_cache = via_cache <= via_transfer;
      entry.trimmed_greedy_step =
          model.lambda +
          (!served_by_cache && s_i != s_prev ? model.lambda : 0.0);
      ++analysis.surviving_count;
    } else {
      // Remaining requests: the greedy step is already at most
      // μ(t_i − t_{i−1}) + λ ≤ 2λ.
      entry.cut = CutClass::kUntouched;
      entry.trimmed_greedy_step = std::min(greedy_step, via_transfer);
      ++analysis.surviving_count;
    }
    analysis.trimmed_greedy_cost += entry.trimmed_greedy_step;
    analysis.entries.push_back(entry);
  }
  if (obs::enabled()) {
    g_cut_ops.add(analysis.entries.size());
    std::size_t removed = 0;
    std::size_t trimmed = 0;
    for (const CutEntry& entry : analysis.entries) {
      removed += entry.cut == CutClass::kRemoved ? 1 : 0;
      trimmed += entry.cut == CutClass::kTrimmed ? 1 : 0;
    }
    g_cut_removed.add(removed);
    g_cut_trimmed.add(trimmed);
    g_cut_untouched.add(analysis.entries.size() - removed - trimmed);
  }
  return analysis;
}

}  // namespace dpg
