#include "solver/optimal_offline.hpp"

#include <algorithm>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "solver/kernels.hpp"
#include "solver/workspace.hpp"
#include "util/error.hpp"

namespace dpg {

namespace {

const obs::Counter g_dp_solves = obs::counter("phase2.dp_solves");
const obs::Counter g_dp_cells = obs::counter("phase2.dp_cells");
const obs::Counter g_workspace_hits = obs::counter("phase2.workspace_reuse_hits");
const obs::Counter g_workspace_local = obs::counter("phase2.workspace_local");
const obs::Histogram g_flow_nodes = obs::histogram("phase2.flow_nodes");

}  // namespace

SolveResult solve_optimal_offline(const Flow& flow, const CostModel& model,
                                  std::size_t server_count,
                                  const OptimalOfflineOptions& options,
                                  SolverWorkspace* workspace) {
  model.validate();
  validate_flow(flow);
  const obs::TraceSpan span("phase2/dp_solve");
  g_dp_solves.add();
  (workspace != nullptr ? g_workspace_hits : g_workspace_local).add();
  SolveResult result;
  result.schedule = Schedule(flow.group_size);
  if (flow.empty()) {
    result.raw_cost = 0.0;
    result.cost = 0.0;
    return result;
  }

  // All scratch lives in the (caller-provided or local) workspace; repeated
  // solves through one workspace reuse capacity and allocate nothing.
  SolverWorkspace local;
  SolverWorkspace& ws = workspace != nullptr ? *workspace : local;

  ws.index.rebuild(flow, server_count);
  const RequestIndex& index = ws.index;
  const std::size_t n = index.node_count();  // origin + services
  g_dp_cells.add(n - 1);
  g_flow_nodes.record(n);
  const double mu = model.mu;
  const double lambda = model.lambda;

  // w_j: the cheapest way to serve node j as an *intermediate* under a cache
  // line that spans its time — a λ side-transfer off the line, or j's own
  // local cache link from its previous same-server visit.
  ws.w.assign(n, 0.0);
  std::vector<Cost>& w = ws.w;
  // W: prefix sums of w, W[i] = w_1 + ... + w_i.
  ws.w_prefix.assign(n, 0.0);
  std::vector<Cost>& w_prefix = ws.w_prefix;

  ws.c.assign(n, 0.0);
  std::vector<Cost>& c = ws.c;
  ws.choice.assign(n, DpChoice{});
  std::vector<DpChoice>& choice = ws.choice;
  SuffixMin& suffix = ws.suffix;  // over v_k = C(k) − W(k), pushed as states complete
  suffix.clear();
  suffix.push(0, 0.0);

  if (options.use_kernels) {
    // Kernel path (solver/kernels.hpp): gather the same-server predecessor
    // and link columns once, run the w/W pass as flat column kernels, and
    // answer D(i)'s window minimum with a blocked scan over the dense
    // v_k = C(k) − W(k) column — SuffixMin stays as the wide-window
    // backstop.  Bit-identical to the reference branch below.
    const Time* t = index.times().data();
    const ServerId* s = index.servers().data();
    ws.prev.resize(n);
    std::int32_t* prev = ws.prev.data();
    prev[0] = RequestIndex::kNone;
    for (std::size_t j = 1; j < n; ++j) prev[j] = index.prev_same_server(j);
    ws.link.resize(n);
    kernels::link_costs(t, prev, mu, n, ws.link.data());
    kernels::w_and_prefix(ws.link.data(), lambda, n, w.data(),
                          w_prefix.data());
    ws.v.resize(n);
    double* v = ws.v.data();
    v[0] = 0.0;

    for (std::size_t i = 1; i < n; ++i) {
      const Cost tr =
          c[i - 1] + mu * (t[i] - t[i - 1]) + (s[i] != s[i - 1] ? lambda : 0.0);
      Cost line = kInfiniteCost;
      std::int32_t line_k = -1;
      const std::int32_t p = prev[i];
      if (p >= 0) {
        const Cost base = mu * (t[i] - t[static_cast<std::size_t>(p)]) +
                          w_prefix[i - 1];
        if (i - static_cast<std::size_t>(p) <= kernels::kWindowScanThreshold) {
          const auto [arg, best] =
              kernels::window_min(v, static_cast<std::size_t>(p), i);
          line = base + best;
          line_k = arg;
        } else {
          const auto [arg, best] = suffix.query(p);
          if (best < kInfiniteCost) {
            line = base + best;
            line_k = arg;
          }
        }
      }
      if (line < tr) {
        c[i] = line;
        choice[i] = DpChoice{true, line_k};
      } else {
        c[i] = tr;
        choice[i] = DpChoice{false, static_cast<std::int32_t>(i) - 1};
      }
      v[i] = c[i] - w_prefix[i];
      suffix.push(static_cast<std::int32_t>(i), v[i]);
    }
  } else {
    // Reference path: the literal recurrences, kept as the bit-exact oracle
    // the kernels are cross-checked against.
    for (std::size_t j = 1; j < n; ++j) {
      Cost local_link = kInfiniteCost;
      const std::int32_t pj = index.prev_same_server(j);
      if (pj >= 0) {
        local_link = mu * (index.time_of(j) -
                           index.time_of(static_cast<std::size_t>(pj)));
      }
      w[j] = std::min(lambda, local_link);
      w_prefix[j] = w_prefix[j - 1] + w[j];
    }

    for (std::size_t i = 1; i < n; ++i) {
      const Time t_i = index.time_of(i);
      const Time t_prev = index.time_of(i - 1);
      const ServerId s_i = index.server_of(i);
      const ServerId s_prev = index.server_of(i - 1);

      // Tr(i): chain through the previous service point.
      const Cost tr =
          c[i - 1] + mu * (t_i - t_prev) + (s_i != s_prev ? lambda : 0.0);

      // D(i): cache line on s_i from the previous same-server visit p(i);
      // every node between the split k and i is served for w_j.
      Cost line = kInfiniteCost;
      std::int32_t line_k = -1;
      const std::int32_t p = index.prev_same_server(i);
      if (p >= 0) {
        const Time t_p = index.time_of(static_cast<std::size_t>(p));
        const Cost base = mu * (t_i - t_p) + w_prefix[i - 1];
        if (options.fast_range_min) {
          const auto [arg, best] = suffix.query(p);
          if (best < kInfiniteCost) {
            line = base + best;
            line_k = arg;
          }
        } else {
          for (std::int32_t k = p; k < static_cast<std::int32_t>(i); ++k) {
            const Cost candidate =
                base + c[static_cast<std::size_t>(k)] -
                w_prefix[static_cast<std::size_t>(k)];
            if (candidate < line) {
              line = candidate;
              line_k = k;
            }
          }
        }
      }

      if (line < tr) {
        c[i] = line;
        choice[i] = DpChoice{true, line_k};
      } else {
        c[i] = tr;
        choice[i] = DpChoice{false, static_cast<std::int32_t>(i) - 1};
      }
      suffix.push(static_cast<std::int32_t>(i), c[i] - w_prefix[i]);
    }
  }

  result.raw_cost = c[n - 1];
  result.cost = model.flow_multiplier(flow.group_size) * result.raw_cost;

  if (options.build_schedule) {
    // Backtrack from the last node; each step explains how node i and the
    // nodes between the predecessor state and i are physically served.
    std::size_t i = n - 1;
    while (i > 0) {
      const DpChoice& ch = choice[i];
      const Time t_i = index.time_of(i);
      const ServerId s_i = index.server_of(i);
      if (ch.via_line) {
        const auto p = static_cast<std::size_t>(index.prev_same_server(i));
        result.schedule.add_segment(s_i, index.time_of(p), t_i);
        const auto k = static_cast<std::size_t>(ch.split_k);
        // Intermediates: local cache link when that is what w_j priced,
        // otherwise a side transfer off the line.
        for (std::size_t j = k + 1; j < i; ++j) {
          const std::int32_t pj = index.prev_same_server(j);
          const bool local_chosen =
              pj >= 0 &&
              mu * (index.time_of(j) -
                    index.time_of(static_cast<std::size_t>(pj))) < lambda;
          if (local_chosen) {
            result.schedule.add_segment(
                index.server_of(j),
                index.time_of(static_cast<std::size_t>(pj)),
                index.time_of(j));
          } else {
            result.schedule.add_transfer(s_i, index.server_of(j),
                                         index.time_of(j));
          }
        }
        i = k;
      } else {
        const ServerId s_prev = index.server_of(i - 1);
        result.schedule.add_segment(s_prev, index.time_of(i - 1), t_i);
        if (s_prev != s_i) result.schedule.add_transfer(s_prev, s_i, t_i);
        i = i - 1;
      }
    }
  }
  return result;
}

}  // namespace dpg
