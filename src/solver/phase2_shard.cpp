#include "solver/phase2_shard.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "solver/workspace.hpp"

namespace dpg {

namespace {

const obs::Counter g_flows_sharded = obs::counter("phase2.flows_sharded");
const obs::Counter g_ws_reused = obs::counter("phase2.ws_reused");

void solve_range(std::size_t begin, std::size_t end, const FlowSolveFn& solve,
                 SolverWorkspace& ws) {
  for (std::size_t i = begin; i < end; ++i) solve(i, ws);
  if (end - begin > 1) g_ws_reused.add(end - begin - 1);
}

}  // namespace

std::size_t phase2_shard_count(std::size_t flow_count,
                               std::size_t worker_count) noexcept {
  // Mirrors parallel_for_chunks: 4 shards per worker for load balance, never
  // more shards than flows.  A pure function of its arguments, so the flow →
  // shard assignment is deterministic for a given pool width.
  if (flow_count < 2 || worker_count == 0) return flow_count == 0 ? 0 : 1;
  return std::min(flow_count, worker_count * 4);
}

void for_each_flow_sharded(ThreadPool* pool, std::size_t flow_count,
                           const FlowSolveFn& solve,
                           SolverWorkspace* serial_workspace) {
  if (flow_count == 0) return;
  if (pool == nullptr || flow_count < 2) {
    SolverWorkspace local;
    solve_range(0, flow_count, solve,
                serial_workspace != nullptr ? *serial_workspace : local);
    return;
  }
  g_flows_sharded.add(flow_count);
  parallel_for_chunks(*pool, flow_count,
                      [&](std::size_t, std::size_t begin, std::size_t end) {
                        const obs::TraceSpan span("phase2/shard");
                        SolverWorkspace ws;
                        solve_range(begin, end, solve, ws);
                      });
}

}  // namespace dpg
