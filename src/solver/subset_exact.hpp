// A second, structurally independent exact solver for the single-flow
// offline problem, used to cross-validate the DP on instances far larger
// than the parent-assignment enumeration (solver/bruteforce.hpp) can reach.
//
// Formulation.  In a standard-form schedule every service point is served
// either LOCALLY (a cache line on its own server extending back to its
// previous same-server visit p(i)) or by a TRANSFER (λ, from any copy alive
// at that instant).  A feasible schedule must keep at least one copy alive
// through [0, t_n]; stretches not covered by any chosen local link are
// bridged by holding a copy at μ per time unit (a bridge always has a valid
// anchor: gaps open at the origin, at a covered-interval end, or at a
// request time, all of which have a copy).  Hence for a choice set
// S ⊆ {points with p(i) defined}:
//
//   cost(S) = μ · Σ_{i∈S} (t_i − t_{p(i)})            (local links)
//           + λ · |points ∖ S|                         (transfers)
//           + μ · |[0, t_n] ∖ ⋃_{i∈S} [t_{p(i)}, t_i]| (bridges)
//
// and the optimum is min over all 2^|candidates| subsets.  Equivalence with
// the DP's recurrences is exactly what tests/subset_exact_test.cpp checks.
#pragma once

#include "core/cost_model.hpp"
#include "core/flow.hpp"

namespace dpg {

struct SubsetExactResult {
  Cost raw_cost = 0.0;
  Cost cost = 0.0;
  /// Chosen LOCAL points (indices into flow.points).
  std::vector<std::size_t> local_points;
};

/// Exhausts all local/transfer subsets.  Throws InvalidArgument when the
/// number of local candidates exceeds `max_candidates` (runtime is
/// O(2^candidates · n)).
[[nodiscard]] SubsetExactResult solve_subset_exact(const Flow& flow,
                                                   const CostModel& model,
                                                   std::size_t server_count,
                                                   std::size_t max_candidates = 20);

}  // namespace dpg
