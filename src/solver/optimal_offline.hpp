// The optimal offline single-flow caching algorithm of Wang et al. [6]
// (ICPP 2017), reconstructed from the recurrences worked in Section V-C of
// the DP_Greedy paper.  It is the substrate Phase 2 of DP_Greedy calls for
// package flows and for unpacked items, and the paper's "Optimal" baseline.
//
// Model recap: one flow (an item, or a package priced by its multiplier)
// starts at the origin server at time 0 and must be present at each service
// point (s_i, t_i).  Caching costs μ per time unit, a transfer costs λ,
// replication/deletion are free, transfers happen at service times
// (standard form).
//
// Recurrences (C(i) = optimal cost to serve points 1..i; node 0 = origin;
// p(i) = most recent node on s_i's server strictly before i):
//
//   w(j)  = min(λ, μ(t_j − t_{p(j)}))          (λ if p(j) does not exist)
//   W(i)  = w(1) + ... + w(i)
//   Tr(i) = C(i-1) + μ(t_i − t_{i-1}) + [s_i ≠ s_{i-1}]·λ
//   D(i)  = min_{k = p(i) .. i-1}  C(k) + μ(t_i − t_{p(i)}) + (W(i−1) − W(k))
//   C(i)  = min(Tr(i), D(i))
//
// Tr chains the copy through the previous service point.  D lays a cache
// line on s_i's server from the previous same-server visit p(i); every
// point j between the split k and i is then served for w(j): either a λ
// side-transfer off that line or j's own short local cache link, whichever
// is cheaper (the paper's Section V-C arithmetic prices every intermediate
// at λ because its examples never have a cheaper local link; the w(j) form
// is what exhaustive search confirms optimal).  The split k ≥ p(i) keeps
// the copy alive continuously: the line spans [t_{p(i)}, t_i] ⊇ [t_k, t_i].
// Optimality over all standard-form schedules is cross-validated against
// exhaustive enumeration in tests/optimality_test.cpp.
#pragma once

#include "core/cost_model.hpp"
#include "core/flow.hpp"
#include "solver/solve_result.hpp"

namespace dpg {

struct SolverWorkspace;

struct OptimalOfflineOptions {
  /// Use the monotonic-stack suffix-min structure for the inner minimum of
  /// D(i) (O(n log n) overall) instead of the literal O(n) scan per node
  /// (O(n²) overall, the paper's Section-V bound). Results are identical;
  /// tests cross-check both paths.  Only consulted when `use_kernels` is
  /// off — the kernel path embeds the suffix-min as its wide-window
  /// backstop.
  bool fast_range_min = true;

  /// Run the DP through the branch-light SoA kernels (solver/kernels.hpp):
  /// precomputed link column, vectorized w pass, blocked window-min with
  /// the SuffixMin stack as the asymptotic backstop.  Bit-identical to the
  /// scalar reference on every input (tests/kernel_equivalence_test.cpp);
  /// off = the reference loops, kept as the cross-check oracle.
  bool use_kernels = true;

  /// Reconstruct the schedule (backtracking). Costs are computed either way.
  bool build_schedule = true;
};

/// Solves one flow to optimality. `server_count` bounds the server ids in
/// the flow; the flow starts at `origin` (server 0 by default) at time 0.
/// Passing a `workspace` reuses its scratch buffers (solver/workspace.hpp)
/// so repeated solves perform zero steady-state allocations; results are
/// bit-identical with or without one.
[[nodiscard]] SolveResult solve_optimal_offline(
    const Flow& flow, const CostModel& model, std::size_t server_count,
    const OptimalOfflineOptions& options = {},
    SolverWorkspace* workspace = nullptr);

}  // namespace dpg
