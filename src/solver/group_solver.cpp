#include "solver/group_solver.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "solver/correlation.hpp"
#include "solver/kernels.hpp"
#include "solver/phase2_shard.hpp"
#include "solver/workspace.hpp"
#include "util/error.hpp"

namespace dpg {

namespace {

const obs::Counter g_group_packages = obs::counter("group.packages_solved");
const obs::Counter g_group_partials = obs::counter("group.partial_requests");

GroupReport solve_group_package_ws(const RequestSequence& sequence,
                                   const CostModel& model,
                                   const std::vector<ItemId>& group,
                                   const OptimalOfflineOptions& dp,
                                   SolverWorkspace& ws) {
  const obs::TraceSpan span("group/package");
  g_group_packages.add();
  require(group.size() >= 2, "solve_group_package: group must have >= 2 items");
  GroupReport report;
  report.items = group;
  for (const ItemId item : group) {
    report.total_accesses += sequence.item_frequency(item);
  }

  const Flow group_flow = make_group_flow(sequence, group);
  report.full_request_count = group_flow.size();
  SolveResult solved =
      solve_optimal_offline(group_flow, model, sequence.server_count(), dp,
                            &ws);
  report.package_cost = solved.cost;  // g·α-discounted
  report.package_schedule = std::move(solved.schedule);

  // Greedy pass over every request touching the group but not all of it.
  const double g = static_cast<double>(group.size());
  const Cost package_fetch = g * model.alpha * model.lambda;

  // Per-item recency state: previous event time and last visit per server.
  std::vector<Time> prev_time(group.size(), 0.0);
  std::vector<std::vector<Time>> last_on_server(
      group.size(), std::vector<Time>(sequence.server_count(), -1.0));
  for (auto& per_server : last_on_server) per_server[kOriginServer] = 0.0;

  const auto slot_of = [&group](ItemId item) {
    return static_cast<std::size_t>(
        std::find(group.begin(), group.end(), item) - group.begin());
  };

  for (const Request& r : sequence.requests()) {
    std::vector<std::size_t> present;  // group slots requested here
    for (const ItemId item : r.items) {
      if (std::find(group.begin(), group.end(), item) != group.end()) {
        present.push_back(slot_of(item));
      }
    }
    if (present.empty()) continue;
    if (present.size() < group.size()) {
      g_group_partials.add();
      Cost individual_total = 0.0;
      Cost individual_transfer = 0.0;  // λ-side of the per-item choices
      std::size_t individual_transfer_events = 0;
      for (const std::size_t slot : present) {
        // Branch-light two-way choice (solver/kernels.hpp) — the ∞ sentinel
        // goes in directly rather than via a μ·∞ product, same bits as the
        // original if/else accounting.
        const Time last = last_on_server[slot][r.server];
        const Cost cache_option =
            last >= 0.0 ? model.mu * (r.time - last) : kInfiniteCost;
        const Cost transfer_option =
            model.mu * (r.time - prev_time[slot]) + model.lambda;
        bool took_transfer = false;
        individual_total += kernels::min_cache_transfer(
            cache_option, transfer_option, &took_transfer);
        individual_transfer += took_transfer ? model.lambda : 0.0;
        individual_transfer_events += took_transfer ? 1 : 0;
      }
      report.partial_cost += std::min(individual_total, package_fetch);
      if (individual_total <= package_fetch) {
        report.partial_transfer_cost += individual_transfer;
        report.partial_transfer_events += individual_transfer_events;
      } else {
        report.partial_transfer_cost += package_fetch;
        ++report.partial_transfer_events;
      }
    }
    for (const std::size_t slot : present) {
      prev_time[slot] = r.time;
      last_on_server[slot][r.server] = r.time;
    }
  }
  return report;
}

SingleItemReport solve_group_single_ws(const RequestSequence& sequence,
                                       const CostModel& model, ItemId item,
                                       const OptimalOfflineOptions& dp,
                                       SolverWorkspace& ws) {
  SingleItemReport report;
  report.item = item;
  report.accesses = sequence.item_frequency(item);
  make_item_flow(sequence, item, ws.flow);
  SolveResult solved =
      solve_optimal_offline(ws.flow, model, sequence.server_count(), dp, &ws);
  report.cost = solved.cost;
  report.schedule = std::move(solved.schedule);
  return report;
}

}  // namespace

GroupReport solve_group_package(const RequestSequence& sequence,
                                const CostModel& model,
                                const std::vector<ItemId>& group,
                                const OptimalOfflineOptions& dp) {
  model.validate();
  SolverWorkspace ws;
  return solve_group_package_ws(sequence, model, group, dp, ws);
}

GroupDpGreedyResult solve_group_dp_greedy(const RequestSequence& sequence,
                                          const CostModel& model,
                                          const GroupDpGreedyOptions& options) {
  model.validate();
  require(options.theta >= 0.0 && options.theta <= 1.0,
          "solve_group_dp_greedy: theta must be in [0, 1]");
  GroupDpGreedyResult result;
  result.total_item_accesses = sequence.total_item_accesses();

  const obs::TraceSpan solve_span("solve/group_dp_greedy");
  const CorrelationAnalysis analysis(sequence);
  result.packing =
      greedy_grouping(analysis, options.theta, options.max_group_size);

  // Phase 2: independent per-group and per-single solves, sharded through
  // solver/phase2_shard.hpp into pre-sized slots (bit-identical reductions
  // below, any pool width).
  const std::size_t group_count = result.packing.groups.size();
  const std::size_t single_count = result.packing.singles.size();
  result.groups.resize(group_count);
  result.singles.resize(single_count);
  for_each_flow_sharded(
      options.pool, group_count + single_count,
      [&](std::size_t i, SolverWorkspace& ws) {
        if (i < group_count) {
          result.groups[i] = solve_group_package_ws(
              sequence, model, result.packing.groups[i], options.dp, ws);
        } else {
          result.singles[i - group_count] =
              solve_group_single_ws(sequence, model,
                                    result.packing.singles[i - group_count],
                                    options.dp, ws);
        }
      });

  for (const GroupReport& report : result.groups) {
    result.total_cost += report.total_cost();
  }
  for (const SingleItemReport& report : result.singles) {
    result.total_cost += report.cost;
  }
  result.ave_cost =
      result.total_item_accesses == 0
          ? 0.0
          : result.total_cost / static_cast<double>(result.total_item_accesses);
  return result;
}

}  // namespace dpg
