// Deterministic sharded execution of Phase-2 flow solves.
//
// After Phase 1 fixes the flow set (packages + unpacked singles), every flow
// is an independent DP/greedy solve.  This helper is the one fan-out path all
// Phase-2 solvers share: it runs `solve(flow_index, workspace)` for every
// flow in [0, flow_count), either serially (pool == nullptr) or sharded over
// a ThreadPool with one SolverWorkspace per shard.
//
// Determinism contract:
//   * The flow → shard assignment is a pure function of (flow_count,
//     pool->worker_count()): contiguous ranges, the same arithmetic as
//     parallel_for_chunks.  No work stealing, no dependence on scheduling.
//   * Each shard owns its workspace exclusively; `solve` must write its
//     result into a pre-sized slot indexed by flow_index and must not touch
//     shared accumulators.  Callers then reduce the slots serially in flow
//     order, so totals see the exact FP addition order of the serial path —
//     results are bit-identical at every thread count.
//
// Telemetry: each shard runs under a `phase2/shard` span;
// `phase2.flows_sharded` counts flows dispatched through a pool and
// `phase2.ws_reused` counts solves that reused an already-warm workspace
// (serial or sharded — the zero-alloc steady state of PR 1).
#pragma once

#include <cstddef>
#include <functional>

namespace dpg {

class ThreadPool;
struct SolverWorkspace;

/// Solves one flow into its slot; must be safe to call concurrently for
/// distinct flow indices (with distinct workspaces).
using FlowSolveFn = std::function<void(std::size_t, SolverWorkspace&)>;

/// Runs `solve(i, ws)` for every i in [0, flow_count).  Serial when `pool`
/// is null or there is at most one flow; otherwise one task per shard over
/// the pool.  Blocks until every flow is solved; the first exception (if
/// any) is rethrown on the calling thread.  When `serial_workspace` is
/// non-null the serial path reuses it instead of a local one (adapters keep
/// a member workspace warm across runs).
void for_each_flow_sharded(ThreadPool* pool, std::size_t flow_count,
                           const FlowSolveFn& solve,
                           SolverWorkspace* serial_workspace = nullptr);

/// The shard count `for_each_flow_sharded` uses for a given pool width —
/// exposed so tests can pin the deterministic assignment.
[[nodiscard]] std::size_t phase2_shard_count(std::size_t flow_count,
                                             std::size_t worker_count) noexcept;

}  // namespace dpg
