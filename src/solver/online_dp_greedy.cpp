#include "solver/online_dp_greedy.hpp"

#include "obs/trace.hpp"
#include "solver/online_state.hpp"

namespace dpg {

// Thin driver: the policy lives in OnlineDpGreedyState (solver/online_state.hpp),
// which advances one request at a time so the streaming engine can share it.
// Pushing every request of a materialized sequence and finalizing is
// bit-identical to the monolithic loop this replaces.
OnlineDpGreedyResult solve_online_dp_greedy(
    const RequestSequence& sequence, const CostModel& model,
    const OnlineDpGreedyOptions& options) {
  const obs::TraceSpan solve_span("online/dp_greedy");
  OnlineDpGreedyState state(model, options, sequence.item_count());
  for (const Request& r : sequence.requests()) {
    state.push(r.server, r.time, r.items);
  }
  return state.finalize();
}

}  // namespace dpg
