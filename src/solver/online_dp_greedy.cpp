#include "solver/online_dp_greedy.hpp"

#include <algorithm>
#include <deque>
#include <span>
#include <vector>

#include "core/flow.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "solver/correlation.hpp"
#include "solver/kernels.hpp"
#include "util/error.hpp"

namespace dpg {

namespace {

const obs::Counter g_online_repacks = obs::counter("online.repack_rounds");
const obs::Counter g_online_packs = obs::counter("online.pack_events");
const obs::Counter g_online_unpacks = obs::counter("online.unpack_events");
const obs::Counter g_online_transfers = obs::counter("online.transfers");
const obs::Counter g_online_package_fetches =
    obs::counter("online.package_fetches");

/// One live replica of a flow.
struct Copy {
  ServerId server;
  Time since;
  Time last_use;
};

/// Break-even replica management for one flow (an item or a package),
/// identical in policy to solver/online.cpp but shared here so item flows
/// and package flows use the same accounting.
class FlowState {
 public:
  FlowState(double multiplier, ServerId start_server, Time start_time)
      : multiplier_(multiplier) {
    copies_.push_back(Copy{start_server, start_time, start_time});
  }

  /// Retires expired copies, then serves a request at (server, t).
  /// Returns the cost increment (multiplier applied).
  Cost serve(ServerId server, Time t, const CostModel& model, double horizon,
             bool never_drop, std::size_t* transfer_count, Time* cache_time) {
    retire(t, model, horizon, never_drop, cache_time);
    for (Copy& c : copies_) {
      if (c.server == server) {
        c.last_use = t;
        return 0.0;  // cache accrual is charged at retirement/finalize
      }
    }
    Copy* source = &copies_.front();
    for (Copy& c : copies_) {
      if (c.last_use > source->last_use) source = &c;
    }
    source->last_use = t;  // held until now to source the transfer
    copies_.push_back(Copy{server, t, t});
    ++*transfer_count;
    return multiplier_ * model.lambda;
  }

  /// True if a copy of this flow is live at `server` right now.
  [[nodiscard]] bool has_copy_at(ServerId server) const {
    return std::any_of(copies_.begin(), copies_.end(),
                       [server](const Copy& c) { return c.server == server; });
  }

  /// Adds a replica at (server, t) (used by package fetches).
  void add_copy(ServerId server, Time t) {
    for (Copy& c : copies_) {
      if (c.server == server) {
        c.last_use = t;
        return;
      }
    }
    copies_.push_back(Copy{server, t, t});
  }

  /// Most recently used copy (always exists).
  [[nodiscard]] const Copy& most_recent() const {
    const Copy* best = &copies_.front();
    for (const Copy& c : copies_) {
      if (c.last_use > best->last_use) best = &c;
    }
    return *best;
  }

  /// Charges all copies up to their last use and clears the flow.
  Cost finalize(const CostModel& model, Time* cache_time) {
    Cost cost = 0.0;
    for (const Copy& c : copies_) {
      cost += multiplier_ * model.mu * (c.last_use - c.since);
      *cache_time += c.last_use - c.since;
    }
    copies_.clear();
    return cost;
  }

  /// Accrued cache cost of copies dropped at their horizon.
  void set_pending_cost(Cost* sink) { pending_sink_ = sink; }

 private:
  void retire(Time now, const CostModel& model, double horizon,
              bool never_drop, Time* cache_time) {
    if (never_drop) return;
    Time newest = -1.0;
    for (const Copy& c : copies_) newest = std::max(newest, c.last_use);
    for (std::size_t i = 0; i < copies_.size();) {
      Copy& c = copies_[i];
      const Time drop_time = c.last_use + horizon;
      if (c.last_use < newest && drop_time < now) {
        if (pending_sink_ != nullptr) {
          *pending_sink_ += multiplier_ * model.mu * (drop_time - c.since);
        }
        *cache_time += drop_time - c.since;
        copies_[i] = copies_.back();
        copies_.pop_back();
      } else {
        ++i;
      }
    }
  }

  double multiplier_;
  std::vector<Copy> copies_;
  Cost* pending_sink_ = nullptr;
};

/// Sliding-window co-occurrence statistics.
class WindowStats {
 public:
  WindowStats(std::size_t item_count, std::size_t window)
      : k_(item_count), window_(window), freq_(item_count, 0),
        co_(item_count * item_count, 0) {}

  void add(std::span<const ItemId> items) {
    history_.emplace_back(items.begin(), items.end());
    bump(items, +1);
    if (history_.size() > window_) {
      bump(history_.front(), -1);
      history_.pop_front();
    }
  }

  [[nodiscard]] double jaccard(ItemId a, ItemId b) const {
    return jaccard_similarity(freq_[a], freq_[b], co_[a * k_ + b]);
  }

  /// Fills out[b] = jaccard(a, b) for b in [b_begin, k) in one branch-light
  /// row pass over the dense co-occurrence matrix (solver/kernels.hpp) —
  /// same expression and bits as jaccard(), minus the per-pair call.
  void jaccard_row(ItemId a, std::size_t b_begin, double* out) const {
    kernels::jaccard_row(freq_.data(), co_.data() + a * k_, freq_[a], b_begin,
                         k_, out);
  }

 private:
  void bump(std::span<const ItemId> items, int delta) {
    for (const ItemId item : items) {
      freq_[item] = static_cast<std::size_t>(
          static_cast<std::ptrdiff_t>(freq_[item]) + delta);
    }
    for (std::size_t x = 0; x < items.size(); ++x) {
      for (std::size_t y = x + 1; y < items.size(); ++y) {
        const std::size_t i = items[x] * k_ + items[y];
        const std::size_t j = items[y] * k_ + items[x];
        co_[i] = static_cast<std::size_t>(
            static_cast<std::ptrdiff_t>(co_[i]) + delta);
        co_[j] = co_[i];
      }
    }
  }

  std::size_t k_;
  std::size_t window_;
  std::vector<std::size_t> freq_;
  std::vector<std::size_t> co_;
  std::deque<std::vector<ItemId>> history_;
};

}  // namespace

OnlineDpGreedyResult solve_online_dp_greedy(
    const RequestSequence& sequence, const CostModel& model,
    const OnlineDpGreedyOptions& options) {
  model.validate();
  require(options.theta >= 0.0 && options.theta <= 1.0,
          "online dp_greedy: theta must be in [0, 1]");
  require(options.window > 0, "online dp_greedy: window must be positive");
  require(options.repack_interval > 0,
          "online dp_greedy: repack_interval must be positive");

  const std::size_t k = sequence.item_count();
  const bool never_drop = model.mu == 0.0;
  const double horizon =
      never_drop ? 0.0 : options.hold_factor * model.lambda / model.mu;

  OnlineDpGreedyResult result;
  result.total_item_accesses = sequence.total_item_accesses();

  WindowStats stats(k, options.window);
  std::vector<ItemId> partner(k, kNoItem);
  std::vector<double> sim_row(k, 0.0);  // repack's per-row jaccard buffer

  // Flow states: one per unpacked item, one per package keyed by the lower
  // item id of the pair.
  std::vector<FlowState> item_flow;
  item_flow.reserve(k);
  for (ItemId item = 0; item < k; ++item) {
    item_flow.emplace_back(1.0, kOriginServer, 0.0);
    item_flow.back().set_pending_cost(&result.total_cost);
  }
  std::vector<FlowState> package_flow;  // indexed by pair slot
  std::vector<ItemId> package_lo(k, kNoItem);  // item -> its package slot key

  const auto package_slot = [&](ItemId item) -> FlowState& {
    return package_flow[package_lo[item]];
  };

  const double pack_rate = model.flow_multiplier(2);

  const auto repack = [&](Time now) {
    const obs::TraceSpan repack_span("online/repack");
    g_online_repacks.add();
    // Dissolve pairs whose windowed similarity decayed below θ/2.
    for (ItemId a = 0; a < k; ++a) {
      const ItemId b = partner[a];
      if (b == kNoItem || a > b) continue;
      if (stats.jaccard(a, b) < options.theta / 2.0) {
        // Split: both items get a copy where the package was last used.
        const Copy seat = package_slot(a).most_recent();
        result.total_cost += package_slot(a).finalize(model, &result.cache_time);
        item_flow[a] = FlowState(1.0, seat.server, now);
        item_flow[a].set_pending_cost(&result.total_cost);
        item_flow[b] = FlowState(1.0, seat.server, now);
        item_flow[b].set_pending_cost(&result.total_cost);
        partner[a] = kNoItem;
        partner[b] = kNoItem;
        ++result.unpack_events;
      }
    }
    // Form new pairs greedily by descending windowed similarity.  Each row
    // of the co-occurrence matrix is scanned as a flat kernel pass into
    // sim_row, then filtered — same candidates in the same order as the
    // per-pair loop this replaces.
    std::vector<std::pair<double, std::pair<ItemId, ItemId>>> candidates;
    for (ItemId a = 0; a < k; ++a) {
      if (partner[a] != kNoItem) continue;
      stats.jaccard_row(a, a + 1, sim_row.data());
      for (ItemId b = a + 1; b < k; ++b) {
        if (partner[b] != kNoItem) continue;
        const double j = sim_row[b];
        if (j > options.theta) candidates.emplace_back(j, std::make_pair(a, b));
      }
    }
    std::sort(candidates.rbegin(), candidates.rend());
    for (const auto& [j, pair] : candidates) {
      const auto [a, b] = pair;
      if (partner[a] != kNoItem || partner[b] != kNoItem) continue;
      // Assemble the package at a's most recent location; b's copy is
      // shipped there at the individual rate.
      const Copy seat = item_flow[a].most_recent();
      result.total_cost += item_flow[a].finalize(model, &result.cache_time);
      result.total_cost += item_flow[b].finalize(model, &result.cache_time);
      result.total_cost += model.lambda;  // move b to the assembly point
      result.transfer_cost += model.lambda;
      ++result.transfers;
      partner[a] = b;
      partner[b] = a;
      package_lo[a] = static_cast<ItemId>(package_flow.size());
      package_lo[b] = package_lo[a];
      package_flow.emplace_back(pack_rate, seat.server, now);
      package_flow.back().set_pending_cost(&result.total_cost);
      ++result.pack_events;
    }
  };

  const obs::TraceSpan solve_span("online/dp_greedy");
  std::size_t since_repack = 0;
  for (const Request& r : sequence.requests()) {
    stats.add(r.items);
    if (++since_repack >= options.repack_interval) {
      since_repack = 0;
      repack(r.time);
    }

    // Serve: group the packed pairs that appear fully in this request.
    std::vector<bool> handled(r.items.size(), false);
    for (std::size_t x = 0; x < r.items.size(); ++x) {
      if (handled[x]) continue;
      const ItemId item = r.items[x];
      const ItemId mate = partner[item];
      if (mate != kNoItem && r.contains(mate)) {
        // Full package request.  serve() returns only the λ part of the
        // charge (cache accrual flows through the pending-cost sink).
        const Cost shipped = package_slot(item).serve(
            r.server, r.time, model, horizon, never_drop, &result.transfers,
            &result.cache_time);
        result.total_cost += shipped;
        result.transfer_cost += shipped;
        for (std::size_t y = 0; y < r.items.size(); ++y) {
          if (r.items[y] == mate) handled[y] = true;
        }
        handled[x] = true;
      } else if (mate != kNoItem) {
        // Single item of a packed pair: free if the package is local,
        // otherwise fetch the package for 2αλ (Observation 2).
        FlowState& flow = package_slot(item);
        if (!flow.has_copy_at(r.server)) {
          result.total_cost += pack_rate * model.lambda;
          result.transfer_cost += pack_rate * model.lambda;
          ++result.package_fetches;
          flow.add_copy(r.server, r.time);
        } else {
          flow.add_copy(r.server, r.time);  // refresh last_use
        }
        handled[x] = true;
      } else {
        // Unpacked item: plain break-even.
        const Cost shipped = item_flow[item].serve(
            r.server, r.time, model, horizon, never_drop, &result.transfers,
            &result.cache_time);
        result.total_cost += shipped;
        result.transfer_cost += shipped;
        handled[x] = true;
      }
    }
  }

  // Close the books on every live flow.
  for (ItemId item = 0; item < k; ++item) {
    if (partner[item] == kNoItem) {
      result.total_cost += item_flow[item].finalize(model, &result.cache_time);
    } else if (item < partner[item]) {
      result.total_cost += package_slot(item).finalize(model, &result.cache_time);
    }
  }

  result.ave_cost =
      result.total_item_accesses == 0
          ? 0.0
          : result.total_cost / static_cast<double>(result.total_item_accesses);
  g_online_packs.add(result.pack_events);
  g_online_unpacks.add(result.unpack_events);
  g_online_transfers.add(result.transfers);
  g_online_package_fetches.add(result.package_fetches);
  return result;
}

}  // namespace dpg
