#include "solver/pairing.hpp"

#include <algorithm>
#include <numeric>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace dpg {

namespace {

const obs::Counter g_pairs_packed = obs::counter("phase1.pairs_packed");
const obs::Counter g_groups_packed = obs::counter("phase1.groups_packed");

}  // namespace

Packing greedy_pairing(const CorrelationAnalysis& analysis, double theta,
                       bool inclusive) {
  const obs::TraceSpan span("phase1/pairing");
  const std::size_t k = analysis.item_count();
  std::vector<bool> packed(k, false);
  Packing packing;
  for (const PairCorrelation& pair : analysis.sorted_pairs()) {
    const bool clears =
        inclusive ? pair.jaccard >= theta : pair.jaccard > theta;
    if (!clears) break;  // pairs are sorted by descending similarity
    if (packed[pair.a] || packed[pair.b]) continue;
    packing.pairs.push_back(ItemPair{pair.a, pair.b, pair.jaccard});
    packed[pair.a] = true;
    packed[pair.b] = true;
  }
  for (ItemId item = 0; item < k; ++item) {
    if (!packed[item]) packing.singles.push_back(item);
  }
  g_pairs_packed.add(packing.pairs.size());
  return packing;
}

GroupPacking greedy_grouping(const CorrelationAnalysis& analysis, double theta,
                             std::size_t max_group_size) {
  const obs::TraceSpan span("phase1/grouping");
  require(max_group_size >= 2, "greedy_grouping: max_group_size must be >= 2");
  const std::size_t k = analysis.item_count();
  // Union-find style group membership, merged pair-by-pair.
  std::vector<std::size_t> group_of(k);
  std::iota(group_of.begin(), group_of.end(), std::size_t{0});
  std::vector<std::vector<ItemId>> members(k);
  for (ItemId item = 0; item < k; ++item) members[item] = {item};

  for (const PairCorrelation& pair : analysis.sorted_pairs()) {
    if (pair.jaccard <= theta) break;
    const std::size_t ga = group_of[pair.a];
    const std::size_t gb = group_of[pair.b];
    if (ga == gb) continue;
    if (members[ga].size() + members[gb].size() > max_group_size) continue;
    // Complete linkage: every cross pair must clear theta.
    bool all_clear = true;
    for (const ItemId x : members[ga]) {
      for (const ItemId y : members[gb]) {
        if (analysis.jaccard(x, y) <= theta) {
          all_clear = false;
          break;
        }
      }
      if (!all_clear) break;
    }
    if (!all_clear) continue;
    for (const ItemId y : members[gb]) group_of[y] = ga;
    members[ga].insert(members[ga].end(), members[gb].begin(),
                       members[gb].end());
    members[gb].clear();
  }

  GroupPacking out;
  for (std::size_t g = 0; g < k; ++g) {
    if (members[g].size() >= 2) {
      std::sort(members[g].begin(), members[g].end());
      out.groups.push_back(members[g]);
    } else if (members[g].size() == 1) {
      out.singles.push_back(members[g].front());
    }
  }
  g_groups_packed.add(out.groups.size());
  return out;
}

}  // namespace dpg
