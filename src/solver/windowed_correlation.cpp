#include "solver/windowed_correlation.hpp"

#include "util/error.hpp"

namespace dpg {

WindowedCorrelation::WindowedCorrelation(std::size_t item_count,
                                         std::size_t window)
    : window_(window), ring_(window), frequency_(item_count, 0) {
  require(window > 0, "WindowedCorrelation: window must be >= 1");
}

void WindowedCorrelation::ensure_item_count(std::size_t item_count) {
  if (item_count > frequency_.size()) frequency_.resize(item_count, 0);
}

void WindowedCorrelation::add(std::span<const ItemId> items) {
  std::vector<ItemId>& slot = ring_[head_];
  if (size_ == window_) evict(slot);
  if (items.size() > slot.capacity()) ++alloc_events_;
  slot.assign(items.begin(), items.end());
  bump(items);
  if (size_ < window_) ++size_;
  head_ = head_ + 1 == window_ ? 0 : head_ + 1;
}

void WindowedCorrelation::bump(std::span<const ItemId> items) {
  for (const ItemId item : items) ++frequency_[item];
  for (std::size_t x = 0; x < items.size(); ++x) {
    for (std::size_t y = x + 1; y < items.size(); ++y) {
      co_counts_.add(PairCountMap::pack(items[x], items[y]));
    }
  }
}

void WindowedCorrelation::evict(std::span<const ItemId> items) {
  for (const ItemId item : items) --frequency_[item];
  for (std::size_t x = 0; x < items.size(); ++x) {
    for (std::size_t y = x + 1; y < items.size(); ++y) {
      co_counts_.sub(PairCountMap::pack(items[x], items[y]));
    }
  }
}

}  // namespace dpg
