#include "solver/subset_exact.hpp"

#include <algorithm>

#include "core/interval_set.hpp"
#include "core/request_index.hpp"
#include "util/error.hpp"

namespace dpg {

SubsetExactResult solve_subset_exact(const Flow& flow, const CostModel& model,
                                     std::size_t server_count,
                                     std::size_t max_candidates) {
  model.validate();
  validate_flow(flow);
  SubsetExactResult best;
  if (flow.empty()) return best;

  const RequestIndex index(flow, server_count);
  const std::size_t n = index.node_count() - 1;  // service points

  // Local candidates: points with a previous same-server visit.
  struct Candidate {
    std::size_t point;   // 0-based service point index
    Time link_begin;     // t_{p(i)}
    Time link_end;       // t_i
  };
  std::vector<Candidate> candidates;
  for (std::size_t i = 1; i <= n; ++i) {
    const std::int32_t p = index.prev_same_server(i);
    if (p >= 0) {
      candidates.push_back(Candidate{
          i - 1, index.time_of(static_cast<std::size_t>(p)), index.time_of(i)});
    }
  }
  require(candidates.size() <= max_candidates,
          "solve_subset_exact: too many local candidates (" +
              std::to_string(candidates.size()) + " > " +
              std::to_string(max_candidates) + ")");

  const Time horizon = index.time_of(n);
  best.raw_cost = kInfiniteCost;

  IntervalSet links;
  for (std::uint64_t mask = 0; mask < (1ull << candidates.size()); ++mask) {
    // Local link cost + membership.
    Cost link_cost = 0.0;
    links.clear();
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (mask & (1ull << c)) {
        link_cost +=
            model.mu * (candidates[c].link_end - candidates[c].link_begin);
        links.add(candidates[c].link_begin, candidates[c].link_end);
      }
    }
    const std::size_t transfers = n - static_cast<std::size_t>(
                                          __builtin_popcountll(mask));
    // Bridged (uncovered) portion of [0, horizon].
    const Time bridged = links.uncovered_within(0.0, horizon);

    const Cost total = link_cost + model.lambda * static_cast<double>(transfers) +
                       model.mu * bridged;
    if (total < best.raw_cost) {
      best.raw_cost = total;
      best.local_points.clear();
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (mask & (1ull << c)) best.local_points.push_back(candidates[c].point);
      }
    }
  }
  best.cost = model.flow_multiplier(flow.group_size) * best.raw_cost;
  return best;
}

}  // namespace dpg
