// DP_Greedy — the paper's two-phase caching algorithm (Algorithm 1).
//
// Phase 1 packs correlated item pairs by Jaccard similarity (solver/pairing).
// Phase 2 serves, per package {d1, d2}:
//   * requests containing BOTH items with the optimal offline DP over the
//     package flow, priced at the 2α package rate (Table II), and
//   * requests containing ONE of the items greedily, choosing the cheapest of
//       - a cache on the same server from the item's previous visit there,
//       - a transfer from the item's immediately preceding event (λ + cache),
//       - fetching the always-available package for the constant 2αλ
//     (Observation 2).
// Unpacked items are served individually by the optimal offline DP.
//
// Guarantee: total cost ≤ (2/α) × optimal (Theorem 1).
#pragma once

#include <vector>

#include "core/cost_model.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"
#include "solver/optimal_offline.hpp"
#include "solver/pairing.hpp"

namespace dpg {

class ThreadPool;
struct SolverWorkspace;

struct DpGreedyOptions {
  /// Correlation threshold θ; Algorithm 1 packs on J > θ.
  double theta = 0.3;
  /// Pack on J >= θ instead (the inclusive reading used by Package_Served).
  bool inclusive_threshold = false;
  /// Options forwarded to the inner optimal-offline DP.
  OptimalOfflineOptions dp;
  /// Phase-1 representation (dense triangle vs sparse observed-pair hash);
  /// correlation.pool defaults to `pool` below when unset, so one pool
  /// drives both the sharded counting pass and the Phase-2 fan-out.
  CorrelationOptions correlation;
  /// When set, package solves fan out over this pool (packages are
  /// independent, so results are identical to the serial path).
  ThreadPool* pool = nullptr;
};

/// How one single-item request of a packed pair was served (Observation 2).
enum class ServeChoice {
  kCacheSameServer,     // μ(t_i − t_{p(i)})
  kTransferFromPrev,    // μ(t_i − t_{i−1}) + λ
  kPackageFetch,        // 2αλ
};

/// One greedy decision of Phase 2.
struct SingletonService {
  std::size_t request_index = 0;
  ItemId item = 0;
  ServeChoice choice = ServeChoice::kCacheSameServer;
  Cost cost = 0.0;
};

/// Phase-2 outcome for one packed pair.
struct PackageReport {
  ItemPair pair;
  Cost package_cost = 0.0;    // 2α-discounted DP cost of the co-request flow
  Cost singleton_cost = 0.0;  // sum of the greedy decisions
  std::size_t co_request_count = 0;
  std::size_t total_accesses = 0;  // |d_a| + |d_b|
  Schedule package_schedule;       // validatable against the package flow
  std::vector<SingletonService> services;

  [[nodiscard]] Cost total_cost() const noexcept {
    return package_cost + singleton_cost;
  }
  /// The pair-local ave_cost plotted in Figs. 11 and 13.
  [[nodiscard]] double ave_cost() const noexcept {
    return total_accesses == 0
               ? 0.0
               : total_cost() / static_cast<double>(total_accesses);
  }
};

/// Phase-2 outcome for an unpacked item (plain optimal DP).
struct SingleItemReport {
  ItemId item = 0;
  Cost cost = 0.0;
  std::size_t accesses = 0;
  Schedule schedule;
};

/// Full DP_Greedy outcome.
struct DpGreedyResult {
  Packing packing;
  std::vector<PackageReport> packages;
  std::vector<SingleItemReport> singles;
  Cost total_cost = 0.0;
  std::size_t total_item_accesses = 0;
  /// Algorithm 1's output: total_cost / Σ|d_i|.
  double ave_cost = 0.0;
};

/// Runs both phases over the whole sequence.
[[nodiscard]] DpGreedyResult solve_dp_greedy(const RequestSequence& sequence,
                                             const CostModel& model,
                                             const DpGreedyOptions& options = {});

/// Phase 2 for one explicitly given pair (used by the figure harnesses,
/// which sweep pairs regardless of the threshold decision).  A `workspace`
/// makes repeated calls allocation-free on the scratch path (results are
/// identical either way).
[[nodiscard]] PackageReport solve_pair_package(
    const RequestSequence& sequence, const CostModel& model, ItemPair pair,
    const OptimalOfflineOptions& dp = {}, SolverWorkspace* workspace = nullptr);

}  // namespace dpg
