// Minimal CSV reading/writing used by trace I/O and figure harnesses.
//
// The dialect is deliberately simple: comma separator, first row is a header,
// quoting with '"' supported on read, fields containing comma/quote/newline
// are quoted on write.  That is sufficient for traces and experiment tables
// and keeps the parser easy to audit.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace dpg {

/// One parsed CSV document: a header plus rows of string fields.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of `column` in the header; throws IoError if absent.
  [[nodiscard]] std::size_t column_index(std::string_view column) const;
};

/// Parses CSV text. Throws IoError on ragged rows or unterminated quotes.
[[nodiscard]] CsvTable parse_csv(std::string_view text);

/// Reads and parses a CSV file. Throws IoError if unreadable.
[[nodiscard]] CsvTable read_csv_file(const std::string& path);

/// Incremental CSV writer.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes one row; fields are quoted only when needed.
  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
};

/// Writes a whole table (header + rows) to a file. Throws IoError on failure.
void write_csv_file(const std::string& path, const CsvTable& table);

}  // namespace dpg
