#include "util/svg_chart.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dpg {

SvgChart::SvgChart(std::string title, std::string x_label, std::string y_label,
                   std::size_t width, std::size_t height)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)),
      width_(width),
      height_(height) {
  require(width_ >= 160 && height_ >= 120, "SvgChart: canvas too small");
}

void SvgChart::add_series(std::string name,
                          std::vector<std::pair<double, double>> points,
                          std::string color) {
  std::sort(points.begin(), points.end());
  series_.push_back(Series{std::move(name), std::move(points), std::move(color)});
}

namespace {

std::string escape_xml(const std::string& text) {
  std::string out;
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// A "nice" tick step covering `span` with ~`count` ticks.
double nice_step(double span, int count) {
  const double raw = span / count;
  const double magnitude = std::pow(10.0, std::floor(std::log10(raw)));
  const double residual = raw / magnitude;
  double step = 10.0;
  if (residual <= 1.0) step = 1.0;
  else if (residual <= 2.0) step = 2.0;
  else if (residual <= 5.0) step = 5.0;
  return step * magnitude;
}

}  // namespace

std::string SvgChart::render() const {
  // Data bounds.
  double x_min = 0.0, x_max = 1.0, y_min = 0.0, y_max = 1.0;
  bool first = true;
  for (const Series& s : series_) {
    for (const auto& [x, y] : s.points) {
      if (first) {
        x_min = x_max = x;
        y_min = y_max = y;
        first = false;
      }
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
  }
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;
  // Pad the y range a little so lines do not hug the frame.
  const double y_pad = 0.05 * (y_max - y_min);
  y_min -= y_pad;
  y_max += y_pad;

  const double margin_left = 64, margin_right = 16;
  const double margin_top = 36, margin_bottom = 48;
  const double plot_w = static_cast<double>(width_) - margin_left - margin_right;
  const double plot_h = static_cast<double>(height_) - margin_top - margin_bottom;

  const auto sx = [&](double x) {
    return margin_left + (x - x_min) / (x_max - x_min) * plot_w;
  };
  const auto sy = [&](double y) {
    return margin_top + plot_h - (y - y_min) / (y_max - y_min) * plot_h;
  };

  std::ostringstream out;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_
      << "\" height=\"" << height_ << "\" viewBox=\"0 0 " << width_ << " "
      << height_ << "\">\n"
      << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
      << "<text x=\"" << width_ / 2 << "\" y=\"20\" text-anchor=\"middle\" "
         "font-family=\"sans-serif\" font-size=\"14\">"
      << escape_xml(title_) << "</text>\n";

  // Axes frame.
  out << "<rect x=\"" << margin_left << "\" y=\"" << margin_top << "\" width=\""
      << plot_w << "\" height=\"" << plot_h
      << "\" fill=\"none\" stroke=\"#333\"/>\n";

  // Ticks and grid.
  const double x_step = nice_step(x_max - x_min, 6);
  for (double x = std::ceil(x_min / x_step) * x_step; x <= x_max + 1e-12;
       x += x_step) {
    out << "<line x1=\"" << sx(x) << "\" y1=\"" << margin_top << "\" x2=\""
        << sx(x) << "\" y2=\"" << margin_top + plot_h
        << "\" stroke=\"#ddd\"/>\n";
    out << "<text x=\"" << sx(x) << "\" y=\"" << margin_top + plot_h + 16
        << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
           "font-size=\"10\">"
        << format_fixed(x, x_step < 1.0 ? 2 : 0) << "</text>\n";
  }
  const double y_step = nice_step(y_max - y_min, 6);
  for (double y = std::ceil(y_min / y_step) * y_step; y <= y_max + 1e-12;
       y += y_step) {
    out << "<line x1=\"" << margin_left << "\" y1=\"" << sy(y) << "\" x2=\""
        << margin_left + plot_w << "\" y2=\"" << sy(y)
        << "\" stroke=\"#ddd\"/>\n";
    out << "<text x=\"" << margin_left - 6 << "\" y=\"" << sy(y) + 3
        << "\" text-anchor=\"end\" font-family=\"sans-serif\" "
           "font-size=\"10\">"
        << format_fixed(y, y_step < 1.0 ? 2 : 0) << "</text>\n";
  }

  // Axis labels.
  out << "<text x=\"" << margin_left + plot_w / 2 << "\" y=\""
      << static_cast<double>(height_) - 10
      << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
         "font-size=\"12\">"
      << escape_xml(x_label_) << "</text>\n";
  out << "<text x=\"14\" y=\"" << margin_top + plot_h / 2
      << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
         "font-size=\"12\" transform=\"rotate(-90 14 "
      << margin_top + plot_h / 2 << ")\">" << escape_xml(y_label_)
      << "</text>\n";

  // Series.
  for (const Series& s : series_) {
    if (s.points.empty()) continue;
    out << "<polyline fill=\"none\" stroke=\"" << s.color
        << "\" stroke-width=\"1.8\" points=\"";
    for (const auto& [x, y] : s.points) {
      out << format_fixed(sx(x), 1) << "," << format_fixed(sy(y), 1) << " ";
    }
    out << "\"/>\n";
    for (const auto& [x, y] : s.points) {
      out << "<circle cx=\"" << format_fixed(sx(x), 1) << "\" cy=\""
          << format_fixed(sy(y), 1) << "\" r=\"2.2\" fill=\"" << s.color
          << "\"/>\n";
    }
  }

  // Legend (top-right inside the frame).
  double legend_y = margin_top + 14;
  for (const Series& s : series_) {
    const double x0 = margin_left + plot_w - 150;
    out << "<line x1=\"" << x0 << "\" y1=\"" << legend_y - 4 << "\" x2=\""
        << x0 + 22 << "\" y2=\"" << legend_y - 4 << "\" stroke=\"" << s.color
        << "\" stroke-width=\"2\"/>\n";
    out << "<text x=\"" << x0 + 28 << "\" y=\"" << legend_y
        << "\" font-family=\"sans-serif\" font-size=\"11\">"
        << escape_xml(s.name) << "</text>\n";
    legend_y += 16;
  }

  out << "</svg>\n";
  return out.str();
}

void SvgChart::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot write SVG file: " + path);
  out << render();
  if (!out) throw IoError("error while writing SVG file: " + path);
}

}  // namespace dpg
