// Error-handling primitives shared across the dpgreedy libraries.
//
// Construction and I/O failures throw `dpg::Error`; hot-path computations
// never throw and report impossibility through sentinel costs (see
// core/cost_model.hpp) instead.
#pragma once

#include <stdexcept>
#include <string>

namespace dpg {

/// Base exception for all library-raised errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an input violates a documented precondition
/// (e.g. requests out of time order, server index out of range).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown on file / parse failures in trace I/O.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Thrown when a binary trace file (.dpt) is malformed: truncated, wrong
/// magic, unsupported version, checksum mismatch, or inconsistent column
/// table.  A subclass of IoError so callers that only distinguish "file
/// problem" keep working; corruption-aware callers can catch this type.
class FormatError : public IoError {
 public:
  explicit FormatError(const std::string& what) : IoError(what) {}
};

/// Precondition check that survives NDEBUG builds: throws InvalidArgument.
/// The literal overload is allocation-free on success — hot-path callers
/// (flow validation, index rebuilds) check per point, so a by-value
/// std::string message would heap-allocate on every successful check.
inline void require(bool condition, const char* message) {
  if (!condition) throw InvalidArgument(message);
}
inline void require(bool condition, const std::string& message) {
  if (!condition) throw InvalidArgument(message);
}

}  // namespace dpg
