#include "util/table.hpp"

#include <algorithm>
#include <ostream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dpg {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  require(!header_.empty(), "TextTable needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  require(row.size() == header_.size(), "TextTable row width mismatch");
  rows_.push_back(std::move(row));
}

void TextTable::add_numeric_row(const std::vector<double>& row, int digits) {
  std::vector<std::string> fields;
  fields.reserve(row.size());
  for (const double v : row) fields.push_back(format_fixed(v, digits));
  add_row(std::move(fields));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += "  ";
      out += row[c];
      out.append(width[c] - row[c].size(), ' ');
    }
    out += '\n';
  };
  std::string out;
  emit(header_, out);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < width.size(); ++c) rule += width[c] + (c > 0 ? 2 : 0);
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit(row, out);
  return out;
}

std::ostream& operator<<(std::ostream& out, const TextTable& table) {
  return out << table.render();
}

}  // namespace dpg
