// Aligned plain-text table printer; figure harnesses use it to print the
// same rows/series the paper plots.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dpg {

class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have as many fields as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `digits` decimals.
  void add_numeric_row(const std::vector<double>& row, int digits = 4);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with padded columns and a header rule.
  [[nodiscard]] std::string render() const;

  friend std::ostream& operator<<(std::ostream& out, const TextTable& table);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dpg
