#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace dpg {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  if (bound <= 1) return 0;
  const std::uint64_t threshold = (~bound + 1) % bound;  // = 2^64 mod bound
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() noexcept {
  // 53 uniform mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

double Rng::next_gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::next_exponential(double rate) noexcept {
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return -std::log(u) / rate;
}

bool Rng::next_bool(double probability_true) noexcept {
  return next_double() < probability_true;
}

std::size_t Rng::next_weighted(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += w;
  double target = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

std::size_t Rng::next_zipf(std::size_t n, double s) noexcept {
  if (n <= 1) return 0;
  double norm = 0.0;
  for (std::size_t i = 1; i <= n; ++i) norm += std::pow(static_cast<double>(i), -s);
  double target = next_double() * norm;
  for (std::size_t i = 1; i <= n; ++i) {
    target -= std::pow(static_cast<double>(i), -s);
    if (target < 0.0) return i - 1;
  }
  return n - 1;
}

Rng Rng::split() noexcept {
  // A child seeded from two fresh outputs is statistically independent for
  // simulation purposes and still a pure function of the parent seed.
  const std::uint64_t a = next_u64();
  const std::uint64_t b = next_u64();
  return Rng(a ^ rotl(b, 31));
}

}  // namespace dpg
