// Small string helpers shared by CSV/CLI parsing and report formatting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dpg {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// Joins `parts` with `sep` between consecutive elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// True if `text` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text,
                               std::string_view prefix) noexcept;

/// Parses a double; throws dpg::IoError with context on failure.
[[nodiscard]] double parse_double(std::string_view text);

/// Parses a non-negative integer; throws dpg::IoError with context on failure.
[[nodiscard]] std::size_t parse_size(std::string_view text);

/// Formats a double with `digits` digits after the decimal point.
[[nodiscard]] std::string format_fixed(double value, int digits);

}  // namespace dpg
