#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dpg {

Summary summarize(std::span<const double> values) noexcept {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (const double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  if (s.count >= 2) {
    double ss = 0.0;
    for (const double v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.count - 1));
  }
  return s;
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto below = static_cast<std::size_t>(rank);
  const std::size_t above = std::min(below + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(below);
  return sorted[below] * (1.0 - frac) + sorted[above] * frac;
}

double confidence95(std::span<const double> values) noexcept {
  const Summary s = summarize(values);
  if (s.count < 2) return 0.0;
  return 1.96 * s.stddev / std::sqrt(static_cast<double>(s.count));
}

Histogram::Histogram(double lo_edge, double hi_edge, std::size_t bin_count)
    : lo(lo_edge), hi(hi_edge), bins(bin_count, 0) {
  require(bin_count > 0, "Histogram needs at least one bin");
  require(hi_edge > lo_edge, "Histogram needs hi > lo");
}

void Histogram::add(double value) noexcept {
  const double unit = (value - lo) / (hi - lo);
  auto index = static_cast<std::ptrdiff_t>(
      std::floor(unit * static_cast<double>(bins.size())));
  index = std::clamp<std::ptrdiff_t>(index, 0,
                                     static_cast<std::ptrdiff_t>(bins.size()) - 1);
  ++bins[static_cast<std::size_t>(index)];
}

std::size_t Histogram::total() const noexcept {
  std::size_t n = 0;
  for (const std::size_t b : bins) n += b;
  return n;
}

std::string Histogram::render(std::size_t max_width) const {
  std::size_t peak = 1;
  for (const std::size_t b : bins) peak = std::max(peak, b);
  std::string out;
  const double width = (hi - lo) / static_cast<double>(bins.size());
  for (std::size_t i = 0; i < bins.size(); ++i) {
    const double edge = lo + width * static_cast<double>(i);
    out += '[';
    out += format_fixed(edge, 2);
    out += ',';
    out += format_fixed(edge + width, 2);
    out += ") ";
    const std::size_t bar = bins[i] * max_width / peak;
    out.append(bar, '#');
    out += " " + std::to_string(bins[i]) + "\n";
  }
  return out;
}

PowerFit fit_power_law(std::span<const double> x, std::span<const double> y) {
  require(x.size() == y.size(), "fit_power_law: size mismatch");
  require(x.size() >= 2, "fit_power_law: need at least 2 points");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    require(x[i] > 0.0 && y[i] > 0.0, "fit_power_law: inputs must be positive");
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
  }
  PowerFit fit;
  const double denom = n * sxx - sx * sx;
  fit.exponent = (n * sxy - sx * sy) / denom;
  fit.coefficient = std::exp((sy - fit.exponent * sx) / n);
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = std::log(fit.coefficient) + fit.exponent * std::log(x[i]);
    const double err = std::log(y[i]) - pred;
    ss_res += err * err;
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace dpg
