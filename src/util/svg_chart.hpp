// Dependency-free SVG line charts.
//
// The figure harnesses print the paper's series as text tables and, via this
// module, also emit an .svg next to them so the reproduced figures can be
// compared with the paper's visually.  Deliberately minimal: linear axes,
// ticks, polyline series, legend.
#pragma once

#include <string>
#include <vector>

namespace dpg {

class SvgChart {
 public:
  SvgChart(std::string title, std::string x_label, std::string y_label,
           std::size_t width = 640, std::size_t height = 420);

  /// Adds one series; call in legend order. Points need not be sorted.
  /// `color` is any SVG color ("#1f77b4", "crimson", ...).
  void add_series(std::string name, std::vector<std::pair<double, double>> points,
                  std::string color);

  /// Renders the complete SVG document.
  [[nodiscard]] std::string render() const;

  /// Convenience: render straight to a file. Throws IoError on failure.
  void write_file(const std::string& path) const;

 private:
  struct Series {
    std::string name;
    std::vector<std::pair<double, double>> points;
    std::string color;
  };

  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::size_t width_;
  std::size_t height_;
  std::vector<Series> series_;
};

}  // namespace dpg
