#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>

namespace dpg {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_write_mutex;

// Sink state, guarded by g_write_mutex (set_log_sink and every write take
// it, so a sink swap never races an in-flight message).
LogSink g_sink;  // empty -> stderr

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::chrono::steady_clock::time_point log_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

/// Small dense per-process thread ids (stable, unlike std::thread::id's
/// opaque hash) so interleaved lines are attributable at a glance.
unsigned local_thread_id() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id = next.fetch_add(1);
  return id;
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void set_log_sink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(g_write_mutex);
  g_sink = std::move(sink);
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - log_epoch());
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "[%9.3f] [t%02u] [%s] ",
                static_cast<double>(elapsed.count()) / 1000.0,
                local_thread_id(), level_name(level));
  const std::lock_guard<std::mutex> lock(g_write_mutex);
  if (g_sink) {
    g_sink(level, prefix + message);
  } else {
    std::fprintf(stderr, "%s%s\n", prefix, message.c_str());
  }
}

}  // namespace dpg
