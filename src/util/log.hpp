// Leveled stderr logger.
//
// The library itself logs nothing at Info by default; harnesses raise the
// level with --verbose. Thread-safe: each message is formatted into a local
// buffer and written with a single mutex-guarded call.
#pragma once

#include <sstream>
#include <string>

namespace dpg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Writes one formatted line (used by the LOG macro; callable directly).
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace dpg

#define DPG_LOG(level)                                  \
  if (static_cast<int>(level) < static_cast<int>(::dpg::log_level())) {} \
  else ::dpg::detail::LogLine(level)

#define DPG_DEBUG DPG_LOG(::dpg::LogLevel::kDebug)
#define DPG_INFO DPG_LOG(::dpg::LogLevel::kInfo)
#define DPG_WARN DPG_LOG(::dpg::LogLevel::kWarn)
#define DPG_ERROR DPG_LOG(::dpg::LogLevel::kError)
