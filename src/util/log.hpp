// Leveled stderr logger.
//
// The library itself logs nothing at Info by default; harnesses raise the
// level with --verbose. Thread-safe: each message is formatted into a local
// buffer and written with a single mutex-guarded call.  Lines carry an
// elapsed-seconds-since-first-log prefix and a small dense per-process
// thread id, e.g. `[    1.042] [t03] [INFO] ...`.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace dpg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Where formatted lines go.  The string is the full prefixed line without
/// a trailing newline.  Called under the logger's write mutex, so sinks
/// need no locking of their own but must not log re-entrantly.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replaces the output sink (default: stderr).  Pass an empty function to
/// restore stderr.  Tests use this to capture log output.
void set_log_sink(LogSink sink);

/// Writes one formatted line (used by the LOG macro; callable directly).
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace dpg

#define DPG_LOG(level)                                  \
  if (static_cast<int>(level) < static_cast<int>(::dpg::log_level())) {} \
  else ::dpg::detail::LogLine(level)

#define DPG_DEBUG DPG_LOG(::dpg::LogLevel::kDebug)
#define DPG_INFO DPG_LOG(::dpg::LogLevel::kInfo)
#define DPG_WARN DPG_LOG(::dpg::LogLevel::kWarn)
#define DPG_ERROR DPG_LOG(::dpg::LogLevel::kError)
