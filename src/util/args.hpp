// Tiny declarative command-line parser for examples and figure harnesses.
//
//   ArgParser args("taxi_fleet", "simulate a taxi fleet workload");
//   auto seed  = args.add_size("seed", "RNG seed", 42);
//   auto alpha = args.add_double("alpha", "discount factor", 0.8);
//   args.parse(argc, argv);            // accepts --alpha 0.6 and --alpha=0.6
//   run(*seed, *alpha);
//
// Unknown flags and malformed values raise InvalidArgument; `--help` prints
// usage and exits(0).
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace dpg {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Registers a flag; the returned pointer stays valid for the parser's
  /// lifetime and holds the default until parse() overwrites it.
  const double* add_double(std::string name, std::string help, double def);
  const std::size_t* add_size(std::string name, std::string help, std::size_t def);
  const std::string* add_string(std::string name, std::string help, std::string def);
  const bool* add_flag(std::string name, std::string help);
  /// Flag with a one-letter short alias (`--verbose` / `-v`).
  const bool* add_flag(std::string name, std::string help, char alias);

  /// Parses argv. Throws InvalidArgument on unknown/malformed options.
  void parse(int argc, const char* const* argv);

  /// Usage text (also printed by --help).
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kDouble, kSize, kString, kFlag };
  struct Option {
    std::string name;
    std::string help;
    Kind kind;
    char alias = '\0';  // one-letter short form; '\0' = none
    std::string default_text;
    std::unique_ptr<double> as_double;
    std::unique_ptr<std::size_t> as_size;
    std::unique_ptr<std::string> as_string;
    std::unique_ptr<bool> as_flag;
  };

  Option* find(const std::string& name);

  std::string program_;
  std::string description_;
  std::vector<std::unique_ptr<Option>> options_;
};

}  // namespace dpg
