// Monotonic wall-clock stopwatch for harness timing (benchmarks proper use
// google-benchmark; this is for coarse experiment bookkeeping).
#pragma once

#include <chrono>

namespace dpg {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  /// Seconds since construction or the last reset().
  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() noexcept { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace dpg
