#include "util/strings.hpp"

#include <charconv>
#include <cstdio>

#include "util/error.hpp"

namespace dpg {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

double parse_double(std::string_view text) {
  const std::string_view t = trim(text);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc{} || ptr != t.data() + t.size()) {
    throw IoError("cannot parse '" + std::string(text) + "' as double");
  }
  return value;
}

std::size_t parse_size(std::string_view text) {
  const std::string_view t = trim(text);
  std::size_t value = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc{} || ptr != t.data() + t.size()) {
    throw IoError("cannot parse '" + std::string(text) + "' as size");
  }
  return value;
}

std::string format_fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

}  // namespace dpg
