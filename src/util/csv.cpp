#include "util/csv.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace dpg {

std::size_t CsvTable::column_index(std::string_view column) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == column) return i;
  }
  throw IoError("CSV column not found: " + std::string(column));
}

namespace {

// Parses one logical CSV record starting at `pos`; advances `pos` past the
// record's line terminator. Handles quoted fields with embedded separators.
std::vector<std::string> parse_record(std::string_view text, std::size_t& pos) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  while (pos < text.size()) {
    const char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          current += '"';
          ++pos;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\n' || c == '\r') {
      if (c == '\r' && pos + 1 < text.size() && text[pos + 1] == '\n') ++pos;
      ++pos;
      fields.push_back(std::move(current));
      return fields;
    } else {
      current += c;
    }
    ++pos;
  }
  if (in_quotes) throw IoError("CSV: unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

bool needs_quoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

std::string quote(std::string_view field) {
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvTable parse_csv(std::string_view text) {
  CsvTable table;
  std::size_t pos = 0;
  bool first = true;
  while (pos < text.size()) {
    auto record = parse_record(text, pos);
    if (record.size() == 1 && record[0].empty()) continue;  // blank line
    if (first) {
      table.header = std::move(record);
      first = false;
    } else {
      if (record.size() != table.header.size()) {
        throw IoError("CSV: row has " + std::to_string(record.size()) +
                      " fields, header has " + std::to_string(table.header.size()));
      }
      table.rows.push_back(std::move(record));
    }
  }
  return table;
}

CsvTable read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open CSV file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str());
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << (needs_quoting(fields[i]) ? quote(fields[i]) : fields[i]);
  }
  out_ << '\n';
}

void write_csv_file(const std::string& path, const CsvTable& table) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot write CSV file: " + path);
  CsvWriter writer(out);
  writer.write_row(table.header);
  for (const auto& row : table.rows) writer.write_row(row);
  if (!out) throw IoError("error while writing CSV file: " + path);
}

}  // namespace dpg
