#include "util/args.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dpg {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

const double* ArgParser::add_double(std::string name, std::string help, double def) {
  auto opt = std::make_unique<Option>();
  opt->name = std::move(name);
  opt->help = std::move(help);
  opt->kind = Kind::kDouble;
  opt->default_text = format_fixed(def, 4);
  opt->as_double = std::make_unique<double>(def);
  const double* out = opt->as_double.get();
  options_.push_back(std::move(opt));
  return out;
}

const std::size_t* ArgParser::add_size(std::string name, std::string help,
                                       std::size_t def) {
  auto opt = std::make_unique<Option>();
  opt->name = std::move(name);
  opt->help = std::move(help);
  opt->kind = Kind::kSize;
  opt->default_text = std::to_string(def);
  opt->as_size = std::make_unique<std::size_t>(def);
  const std::size_t* out = opt->as_size.get();
  options_.push_back(std::move(opt));
  return out;
}

const std::string* ArgParser::add_string(std::string name, std::string help,
                                         std::string def) {
  auto opt = std::make_unique<Option>();
  opt->name = std::move(name);
  opt->help = std::move(help);
  opt->kind = Kind::kString;
  opt->default_text = def;
  opt->as_string = std::make_unique<std::string>(std::move(def));
  const std::string* out = opt->as_string.get();
  options_.push_back(std::move(opt));
  return out;
}

const bool* ArgParser::add_flag(std::string name, std::string help) {
  return add_flag(std::move(name), std::move(help), '\0');
}

const bool* ArgParser::add_flag(std::string name, std::string help, char alias) {
  auto opt = std::make_unique<Option>();
  opt->name = std::move(name);
  opt->help = std::move(help);
  opt->kind = Kind::kFlag;
  opt->alias = alias;
  opt->default_text = "false";
  opt->as_flag = std::make_unique<bool>(false);
  const bool* out = opt->as_flag.get();
  options_.push_back(std::move(opt));
  return out;
}

ArgParser::Option* ArgParser::find(const std::string& name) {
  for (auto& opt : options_) {
    if (opt->name == name) return opt.get();
  }
  return nullptr;
}

void ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
    if (!starts_with(token, "--")) {
      // A lone `-x` may be a registered one-letter flag alias.
      if (token.size() == 2 && token[0] == '-') {
        Option* aliased = nullptr;
        for (auto& opt : options_) {
          if (opt->alias == token[1]) {
            aliased = opt.get();
            break;
          }
        }
        if (aliased != nullptr && aliased->kind == Kind::kFlag) {
          *aliased->as_flag = true;
          continue;
        }
      }
      throw InvalidArgument(program_ + ": unexpected positional argument '" +
                            token + "'");
    }
    token.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (const auto eq = token.find('='); eq != std::string::npos) {
      value = token.substr(eq + 1);
      token.erase(eq);
      has_value = true;
    }
    Option* opt = find(token);
    if (opt == nullptr) {
      throw InvalidArgument(program_ + ": unknown option --" + token);
    }
    if (opt->kind == Kind::kFlag) {
      *opt->as_flag = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        throw InvalidArgument(program_ + ": option --" + token +
                              " expects a value");
      }
      value = argv[++i];
    }
    switch (opt->kind) {
      case Kind::kDouble:
        *opt->as_double = parse_double(value);
        break;
      case Kind::kSize:
        *opt->as_size = parse_size(value);
        break;
      case Kind::kString:
        *opt->as_string = value;
        break;
      case Kind::kFlag:
        break;
    }
  }
}

std::string ArgParser::usage() const {
  std::string out = program_ + " — " + description_ + "\n\noptions:\n";
  for (const auto& opt : options_) {
    out += "  --" + opt->name;
    if (opt->alias != '\0') out += std::string(", -") + opt->alias;
    if (opt->kind != Kind::kFlag) out += " <value>";
    out += "\n      " + opt->help + " (default: " + opt->default_text + ")\n";
  }
  return out;
}

}  // namespace dpg
