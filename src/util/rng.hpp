// Deterministic random-number utilities.
//
// Every stochastic component in the library (trace generators, the mobility
// simulator, randomized property tests) draws from dpg::Rng so that a single
// 64-bit seed reproduces an experiment bit-for-bit.  Rng wraps SplitMix64 for
// seeding and xoshiro256** for the stream; both are small, fast and of
// well-studied quality for simulation workloads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dpg {

/// SplitMix64 step; used to expand one seed into full generator state.
/// Public because tests and stream-splitting also use it directly.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// Satisfies `std::uniform_random_bit_generator`, so it can also feed
/// `std::shuffle` and standard distributions when convenient, but the
/// member helpers below are the preferred, reproducible interface.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; equal seeds yield equal streams on every platform.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }
  result_type operator()() noexcept { return next_u64(); }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, bound). `bound` must be > 0. Unbiased (rejection).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) noexcept;

  /// Standard-normal variate (Box–Muller, cached pair).
  double next_gaussian() noexcept;

  /// Exponential variate with the given rate (mean 1/rate).
  double next_exponential(double rate) noexcept;

  /// Bernoulli trial.
  bool next_bool(double probability_true) noexcept;

  /// Index drawn from the discrete distribution proportional to `weights`.
  /// Weights must be non-negative with a positive sum.
  std::size_t next_weighted(std::span<const double> weights) noexcept;

  /// Zipf-distributed rank in [0, n) with exponent `s` (s = 0 is uniform).
  /// Uses inverse-CDF over precomputable weights; O(n) per call by design
  /// (callers that need many draws should use trace::ZipfSampler).
  std::size_t next_zipf(std::size_t n, double s) noexcept;

  /// Fisher–Yates shuffle of a vector-like span.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Derives an independent child generator; used to give each parallel
  /// worker its own stream while keeping the whole run a function of one seed.
  [[nodiscard]] Rng split() noexcept;

 private:
  std::uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace dpg
