// Descriptive statistics for experiment post-processing: summary moments,
// percentiles, histograms and a least-squares power-law fit used by the
// complexity-scaling bench to check the O(mn^2) claim empirically.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace dpg {

/// Summary of a sample: count, mean, (unbiased) stddev, min/max.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Computes a Summary; an empty sample yields all zeros.
[[nodiscard]] Summary summarize(std::span<const double> values) noexcept;

/// p-th percentile (0..100) by linear interpolation on the sorted sample.
/// The input need not be sorted. Empty sample returns 0.
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// Half-width of the ~95% normal-approximation confidence interval of the
/// mean (1.96 * stddev / sqrt(n)); 0 for samples smaller than 2.
[[nodiscard]] double confidence95(std::span<const double> values) noexcept;

/// Fixed-bin histogram over [lo, hi); values outside clamp to edge bins.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> bins;

  Histogram(double lo_edge, double hi_edge, std::size_t bin_count);
  void add(double value) noexcept;
  [[nodiscard]] std::size_t total() const noexcept;
  /// ASCII rendering ("[0.0,0.1) ###### 42") used by figure harnesses.
  [[nodiscard]] std::string render(std::size_t max_width = 50) const;
};

/// Least-squares fit of y = c * x^k via log–log regression.
/// Inputs must be positive and the spans equal-length with >= 2 points.
struct PowerFit {
  double exponent = 0.0;
  double coefficient = 0.0;
  double r_squared = 0.0;
};
[[nodiscard]] PowerFit fit_power_law(std::span<const double> x,
                                     std::span<const double> y);

}  // namespace dpg
