// RAII trace spans with Chrome trace_event JSON export.
//
// A TraceSpan records one complete ("ph": "X") event — begin timestamp and
// duration on the constructing thread — into that thread's fixed-capacity
// ring of trace events.  Buffers are append-only between resets: when a
// thread's ring fills, further events are dropped and counted, so recording
// never allocates, blocks or overwrites while a reader is merging.  Spans
// nest naturally in the Chrome model (same-tid events whose [ts, ts+dur]
// ranges contain each other render as a stack in Perfetto and
// chrome://tracing).
//
// Like the metrics side, everything is compiled in but off by default: a
// disabled TraceSpan costs one relaxed atomic load and a branch at
// construction and destruction.  trace_json() / snapshot_trace() /
// reset_trace() expect traced work to be quiescent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"  // enabled()

namespace dpg::obs {

/// Per-thread event capacity between resets; overflow is dropped + counted.
inline constexpr std::size_t kTraceRingCapacity = std::size_t{1} << 14;

/// Span names are copied inline into the event (no heap, no dangling);
/// longer names are truncated.
inline constexpr std::size_t kTraceNameCapacity = 48;

class TraceSpan {
 public:
  /// Begins a span named `name` (typically a string literal).
  explicit TraceSpan(const char* name) noexcept;

  /// Begins a span named `prefix + suffix` — for per-solver root spans
  /// ("run/" + registry name) without building a std::string.
  TraceSpan(const char* prefix, std::string_view suffix) noexcept;

  /// Ends the span: records the complete event into the thread's ring.
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  char name_[kTraceNameCapacity];
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

/// One recorded span, for tests and the JSON exporter.
struct TraceEventView {
  std::string name;
  std::uint32_t tid = 0;        // small sequential thread id
  std::uint64_t ts_ns = 0;      // begin, ns since the trace epoch
  std::uint64_t dur_ns = 0;
};

/// Nanoseconds since the trace epoch (process start, or the last
/// reset_trace()).
[[nodiscard]] std::uint64_t trace_now_ns() noexcept;

/// Every recorded span across all threads, sorted by (ts_ns, tid).
[[nodiscard]] std::vector<TraceEventView> snapshot_trace();

/// Spans dropped because a thread ring was full.
[[nodiscard]] std::uint64_t trace_dropped_events() noexcept;

/// Clears every ring and rebases the trace epoch to now.  Caller must
/// guarantee no span is being recorded concurrently.
void reset_trace() noexcept;

/// The whole trace as Chrome trace_event JSON ({"traceEvents": [...]}),
/// loadable in Perfetto / chrome://tracing.  Timestamps are microseconds
/// with ns precision.
[[nodiscard]] std::string trace_json();

}  // namespace dpg::obs
