#include "obs/scrape.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string_view>
#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dpg::obs {

namespace {

// Accept-loop poll granularity: the upper bound on stop() latency while
// idle.
constexpr int kPollMs = 200;
// A scrape request is one short header block; anything bigger is bogus.
constexpr std::size_t kMaxRequestBytes = 8192;
// Total wall-clock budget for reading one request's headers.  Connections
// are served serially on the accept thread, so without this a client
// trickling one byte per poll round would starve other scrapers (and delay
// stop()) for up to kMaxRequestBytes rounds.
constexpr int kRequestDeadlineMs = 2000;

void send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t sent =
        ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      return;  // peer went away; a scraper will simply retry
    }
    data.remove_prefix(static_cast<std::size_t>(sent));
  }
}

void send_response(int fd, std::string_view status,
                   std::string_view content_type, std::string_view body) {
  std::string head;
  head.reserve(128);
  head += "HTTP/1.1 ";
  head += status;
  head += "\r\nContent-Type: ";
  head += content_type;
  head += "\r\nContent-Length: ";
  head += std::to_string(body.size());
  head += "\r\nConnection: close\r\n\r\n";
  send_all(fd, head);
  send_all(fd, body);
}

}  // namespace

void parse_listen_address(const std::string& value, std::string* host,
                          std::uint16_t* port) {
  const std::size_t colon = value.rfind(':');
  require(colon != std::string::npos && colon + 1 < value.size(),
          "--listen: expected HOST:PORT, got '" + value + "'");
  const std::size_t parsed = parse_size(value.substr(colon + 1));
  require(parsed <= 65535,
          "--listen: port out of range in '" + value + "'");
  *host = value.substr(0, colon);
  *port = static_cast<std::uint16_t>(parsed);
}

ScrapeListener::ScrapeListener(const std::string& host, std::uint16_t port,
                               MetricsFn metrics)
    : metrics_(std::move(metrics)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw IoError("scrape listener: socket() failed: " +
                  std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("scrape listener: not an IPv4 address: '" + host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("scrape listener: cannot listen on " + host + ":" +
                  std::to_string(port) + ": " + what);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
  thread_ = std::thread([this] { run(); });
}

ScrapeListener::~ScrapeListener() { stop(); }

void ScrapeListener::stop() {
  if (stop_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ScrapeListener::run() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0) continue;  // timeout (stop re-check) or EINTR
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void ScrapeListener::handle_connection(int fd) {
  // Read until the header terminator; scrape requests have no body.  The
  // whole read shares one deadline (kRequestDeadlineMs), not just each poll.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(kRequestDeadlineMs);
  std::string request;
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    const auto remaining_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now())
            .count();
    if (remaining_ms <= 0) break;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, static_cast<int>(std::min<long long>(
                            remaining_ms, kPollMs * 5))) <= 0) {
      break;
    }
    char buffer[1024];
    const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
    if (got <= 0) break;
    request.append(buffer, static_cast<std::size_t>(got));
  }

  const std::size_t line_end = request.find("\r\n");
  const std::string_view line =
      std::string_view(request).substr(0, line_end);
  const std::size_t method_end = line.find(' ');
  if (method_end == std::string_view::npos) {
    send_response(fd, "400 Bad Request", "text/plain", "bad request\n");
    return;
  }
  const std::string_view method = line.substr(0, method_end);
  std::string_view target = line.substr(method_end + 1);
  target = target.substr(0, target.find(' '));
  // Ignore any query string; scrapers sometimes append one.
  target = target.substr(0, target.find('?'));

  if (method != "GET") {
    send_response(fd, "405 Method Not Allowed", "text/plain",
                  "method not allowed\n");
  } else if (target == "/metrics") {
    send_response(fd, "200 OK", "text/plain; version=0.0.4",
                  metrics_ ? metrics_() : std::string());
  } else if (target == "/healthz") {
    send_response(fd, "200 OK", "text/plain", "ok\n");
  } else {
    send_response(fd, "404 Not Found", "text/plain", "not found\n");
  }
}

}  // namespace dpg::obs
