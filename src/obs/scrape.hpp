// Minimal in-process HTTP scrape endpoint for `serve --listen HOST:PORT`.
//
// Two routes, nothing else:
//   GET /metrics  -> 200, Prometheus text format (the body comes from a
//                    caller-supplied callback, typically
//                    prometheus_text(snapshot_metrics()) plus lines derived
//                    from the pipeline's double-buffered ReportBoard — so a
//                    scrape never touches the engine mutex);
//   GET /healthz  -> 200 "ok\n".
// Anything else is 404 (unknown path) or 405 (non-GET).  One request per
// connection (HTTP/1.0-style `Connection: close`), which is all a
// Prometheus scraper needs and keeps the listener a single poll loop.
//
// Plain POSIX sockets — no third-party dependency.  The accept loop runs
// on one background thread and polls with a short timeout so stop() (or
// destruction) takes effect within ~200ms.  Binding port 0 picks an
// ephemeral port, reported by port() — how the tests avoid collisions.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace dpg::obs {

class ScrapeListener {
 public:
  /// Renders the /metrics body (called on the listener thread per scrape).
  using MetricsFn = std::function<std::string()>;

  /// Binds and starts serving immediately.  `host` is a dotted-quad IPv4
  /// address ("127.0.0.1", "0.0.0.0"); `port` 0 binds an ephemeral port.
  /// Throws IoError if the socket cannot be bound.
  ScrapeListener(const std::string& host, std::uint16_t port,
                 MetricsFn metrics);
  ~ScrapeListener();

  ScrapeListener(const ScrapeListener&) = delete;
  ScrapeListener& operator=(const ScrapeListener&) = delete;

  /// The actually bound port (resolves port 0 to the ephemeral choice).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Stops the accept loop and joins the thread.  Idempotent.
  void stop();

 private:
  void run();
  void handle_connection(int fd);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  MetricsFn metrics_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// Splits a "HOST:PORT" flag value.  Throws InvalidArgument on a missing
/// colon or an unparseable port.
void parse_listen_address(const std::string& value, std::string* host,
                          std::uint16_t* port);

}  // namespace dpg::obs
