#include "obs/exposition.hpp"

#include <cstdio>
#include <fstream>

namespace dpg::obs {
namespace {

bool valid_name_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// Inclusive upper bound of bucket b as a decimal string; bucket
/// kHistogramBuckets-1 is open-ended (it absorbs every wider value) and has
/// no finite bound — callers fold it into `+Inf`.
std::string bucket_upper_bound(std::size_t b) {
  if (b == 0) return "0";
  return std::to_string((std::uint64_t{1} << b) - 1);
}

}  // namespace

std::string prometheus_metric_name(std::string_view name,
                                   std::string_view suffix) {
  std::string out = "dpgreedy_";
  for (const char c : name) out += valid_name_char(c) ? c : '_';
  out += suffix;
  return out;
}

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string exposed = prometheus_metric_name(name, "_total");
    out += "# TYPE " + exposed + " counter\n";
    out += exposed + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, data] : snapshot.histograms) {
    const std::string exposed = prometheus_metric_name(name);
    out += "# TYPE " + exposed + " histogram\n";
    // Finite-bound buckets up to the last nonzero one; the final ring
    // bucket is open-ended, so it only ever shows up inside +Inf.
    std::size_t last = 0;
    for (std::size_t b = 0; b + 1 < kHistogramBuckets; ++b) {
      if (data.buckets[b] != 0) last = b;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b <= last; ++b) {
      cumulative += data.buckets[b];
      out += exposed + "_bucket{le=\"" + bucket_upper_bound(b) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += exposed + "_bucket{le=\"+Inf\"} " + std::to_string(data.count) +
           "\n";
    out += exposed + "_sum " + std::to_string(data.sum) + "\n";
    out += exposed + "_count " + std::to_string(data.count) + "\n";
  }
  return out;
}

bool write_prometheus_file(const std::string& path,
                           const MetricsSnapshot& snapshot) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << prometheus_text(snapshot);
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::uint64_t histogram_quantile_upper(const HistogramData& data,
                                       double q) noexcept {
  if (data.count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(data.count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    cumulative += data.buckets[b];
    if (static_cast<double>(cumulative) >= target && cumulative > 0) {
      if (b == 0) return 0;
      // The last ring bucket is open-ended; its reported bound saturates.
      return (std::uint64_t{1} << b) - 1;
    }
  }
  return (std::uint64_t{1} << (kHistogramBuckets - 1)) - 1;
}

}  // namespace dpg::obs
