// Shared implementation of the metrics and tracing halves of src/obs.
//
// One ThreadState per thread holds both the counter/histogram shard and the
// trace-event ring; the registry keeps every state alive via shared_ptr so
// snapshots can merge shards of threads that have already exited (ThreadPool
// workers joined mid-session).  States are created lazily, on a thread's
// first *enabled* update, so a process that never turns telemetry on
// allocates nothing here.
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>

namespace dpg::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_spans_enabled{true};
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

struct TraceEvent {
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  char name[kTraceNameCapacity] = {};
};

struct HistogramShard {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
};

/// All of one thread's telemetry.  Counter/histogram slots are written only
/// by the owner thread and read by snapshots — relaxed atomics make that
/// race-free without contention.  The event ring is append-only between
/// resets: the owner publishes each slot with a release store of the count,
/// readers acquire the count and read only below it.
struct ThreadState {
  std::uint32_t tid = 0;

  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<HistogramShard, kMaxHistograms> histograms{};

  std::unique_ptr<TraceEvent[]> events =
      std::make_unique<TraceEvent[]>(kTraceRingCapacity);
  std::atomic<std::uint32_t> event_count{0};
  std::atomic<std::uint64_t> dropped{0};

  void zero() noexcept {
    for (auto& c : counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : histograms) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
};

struct Registry {
  std::mutex mutex;
  std::vector<std::string> counter_names;
  std::vector<std::string> histogram_names;
  std::vector<std::shared_ptr<ThreadState>> states;
  Clock::time_point epoch = Clock::now();
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives thread_local dtors
  return *r;
}

thread_local ThreadState* t_state = nullptr;
thread_local std::shared_ptr<ThreadState> t_state_owner;

ThreadState& local_state() {
  if (t_state == nullptr) {
    auto state = std::make_shared<ThreadState>();
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    state->tid = static_cast<std::uint32_t>(reg.states.size());
    reg.states.push_back(state);
    t_state_owner = std::move(state);
    t_state = t_state_owner.get();
  }
  return *t_state;
}

std::size_t bucket_of(std::uint64_t value) noexcept {
  return std::min<std::size_t>(static_cast<std::size_t>(std::bit_width(value)),
                               kHistogramBuckets - 1);
}

std::uint32_t register_name(std::vector<std::string>& names,
                            std::string_view name, std::size_t cap) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<std::uint32_t>(i);
  }
  assert(names.size() < cap && "metric name cap exceeded");
  if (names.size() >= cap) return static_cast<std::uint32_t>(cap - 1);
  names.emplace_back(name);
  return static_cast<std::uint32_t>(names.size() - 1);
}

void copy_name(char (&dst)[kTraceNameCapacity], const char* prefix,
               std::string_view suffix) noexcept {
  std::size_t at = 0;
  for (const char* p = prefix; *p != '\0' && at + 1 < kTraceNameCapacity; ++p) {
    dst[at++] = *p;
  }
  for (const char c : suffix) {
    if (at + 1 >= kTraceNameCapacity) break;
    dst[at++] = c;
  }
  dst[at] = '\0';
}

/// Escapes a metric/span name for JSON (names are plain identifiers in
/// practice; this keeps the exporters safe regardless).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

namespace detail {

void counter_add(std::uint32_t id, std::uint64_t delta) noexcept {
  ThreadState& state = local_state();
  state.counters[id].fetch_add(delta, std::memory_order_relaxed);
}

void histogram_record(std::uint32_t id, std::uint64_t value) noexcept {
  HistogramShard& shard = local_state().histograms[id];
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  shard.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_spans_enabled(bool on) noexcept {
  detail::g_spans_enabled.store(on, std::memory_order_relaxed);
}

Counter counter(std::string_view name) {
  return Counter(register_name(registry().counter_names, name, kMaxCounters));
}

Histogram histogram(std::string_view name) {
  return Histogram(
      register_name(registry().histogram_names, name, kMaxHistograms));
}

MetricsSnapshot snapshot_metrics() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);

  std::vector<std::uint64_t> counters(reg.counter_names.size(), 0);
  std::vector<HistogramData> histograms(reg.histogram_names.size());
  for (const auto& state : reg.states) {
    for (std::size_t i = 0; i < counters.size(); ++i) {
      counters[i] += state->counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < histograms.size(); ++i) {
      const HistogramShard& shard = state->histograms[i];
      histograms[i].count += shard.count.load(std::memory_order_relaxed);
      histograms[i].sum += shard.sum.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        histograms[i].buckets[b] +=
            shard.buckets[b].load(std::memory_order_relaxed);
      }
    }
  }

  MetricsSnapshot snapshot;
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (counters[i] != 0) {
      snapshot.counters.emplace_back(reg.counter_names[i], counters[i]);
    }
  }
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    if (histograms[i].count != 0) {
      snapshot.histograms.emplace_back(reg.histogram_names[i], histograms[i]);
    }
  }
  const auto by_name = [](const auto& x, const auto& y) {
    return x.first < y.first;
  };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

void reset_metrics() noexcept {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& state : reg.states) state->zero();
}

MetricsSnapshot metrics_delta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : after.counters) {
    const std::uint64_t base = counter_value(before, name);
    if (value > base) delta.counters.emplace_back(name, value - base);
  }
  for (const auto& [name, data] : after.histograms) {
    const HistogramData* base = nullptr;
    for (const auto& [base_name, base_data] : before.histograms) {
      if (base_name == name) {
        base = &base_data;
        break;
      }
    }
    if (base == nullptr) {
      delta.histograms.emplace_back(name, data);
      continue;
    }
    if (data.count <= base->count) continue;
    HistogramData diff;
    diff.count = data.count - base->count;
    diff.sum = data.sum - base->sum;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      diff.buckets[b] = data.buckets[b] - base->buckets[b];
    }
    delta.histograms.emplace_back(name, diff);
  }
  return delta;
}

std::uint64_t counter_value(const MetricsSnapshot& snapshot,
                            std::string_view name) noexcept {
  for (const auto& [counter_name, value] : snapshot.counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

std::string metrics_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"schema\": \"dpgreedy-metrics-v1\",\n";
  out += "  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& [name, value] = snapshot.counters[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": " + std::to_string(value);
  }
  out += snapshot.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& [name, data] = snapshot.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + json_escape(name) +
           "\": {\"count\": " + std::to_string(data.count) +
           ", \"sum\": " + std::to_string(data.sum) + ", \"buckets\": [";
    // Trailing empty buckets are trimmed; indices are log2 bucket bounds.
    std::size_t last = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (data.buckets[b] != 0) last = b;
    }
    for (std::size_t b = 0; b <= last; ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(data.buckets[b]);
    }
    out += "]}";
  }
  out += snapshot.histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Tracing.

TraceSpan::TraceSpan(const char* name) noexcept {
  if (!enabled() || !spans_enabled()) return;
  copy_name(name_, name, {});
  start_ns_ = trace_now_ns();
  active_ = true;
}

TraceSpan::TraceSpan(const char* prefix, std::string_view suffix) noexcept {
  if (!enabled() || !spans_enabled()) return;
  copy_name(name_, prefix, suffix);
  start_ns_ = trace_now_ns();
  active_ = true;
}

TraceSpan::~TraceSpan() {
  if (!active_ || !enabled()) return;
  const std::uint64_t end_ns = trace_now_ns();
  ThreadState& state = local_state();
  const std::uint32_t at = state.event_count.load(std::memory_order_relaxed);
  if (at >= kTraceRingCapacity) {
    state.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent& event = state.events[at];
  event.ts_ns = start_ns_;
  event.dur_ns = end_ns - start_ns_;
  std::memcpy(event.name, name_, kTraceNameCapacity);
  state.event_count.store(at + 1, std::memory_order_release);
}

std::uint64_t trace_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           registry().epoch)
          .count());
}

std::vector<TraceEventView> snapshot_trace() {
  Registry& reg = registry();
  std::vector<TraceEventView> out;
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& state : reg.states) {
      const std::uint32_t n = state->event_count.load(std::memory_order_acquire);
      for (std::uint32_t i = 0; i < n; ++i) {
        const TraceEvent& event = state->events[i];
        TraceEventView view;
        view.name = event.name;
        view.tid = state->tid;
        view.ts_ns = event.ts_ns;
        view.dur_ns = event.dur_ns;
        out.push_back(std::move(view));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEventView& x, const TraceEventView& y) {
              if (x.ts_ns != y.ts_ns) return x.ts_ns < y.ts_ns;
              if (x.tid != y.tid) return x.tid < y.tid;
              return x.dur_ns > y.dur_ns;  // parents before children
            });
  return out;
}

std::uint64_t trace_dropped_events() noexcept {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t dropped = 0;
  for (const auto& state : reg.states) {
    dropped += state->dropped.load(std::memory_order_relaxed);
  }
  return dropped;
}

void reset_trace() noexcept {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& state : reg.states) {
    state->event_count.store(0, std::memory_order_relaxed);
    state->dropped.store(0, std::memory_order_relaxed);
  }
  reg.epoch = Clock::now();
}

std::string trace_json() {
  const std::vector<TraceEventView> events = snapshot_trace();
  std::string out = "{\"traceEvents\": [\n";
  out +=
      "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, "
      "\"args\": {\"name\": \"dpgreedy\"}}";
  char buffer[96];
  for (const TraceEventView& event : events) {
    // Chrome timestamps are microseconds; keep ns precision as fractions.
    std::snprintf(buffer, sizeof(buffer),
                  "\"ts\": %llu.%03u, \"dur\": %llu.%03u",
                  static_cast<unsigned long long>(event.ts_ns / 1000),
                  static_cast<unsigned>(event.ts_ns % 1000),
                  static_cast<unsigned long long>(event.dur_ns / 1000),
                  static_cast<unsigned>(event.dur_ns % 1000));
    out += ",\n{\"name\": \"" + json_escape(event.name) +
           "\", \"cat\": \"dpg\", \"ph\": \"X\", \"pid\": 1, \"tid\": " +
           std::to_string(event.tid) + ", " + buffer + "}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

}  // namespace dpg::obs
