// Prometheus text-format exposition of a MetricsSnapshot.
//
// The exporter is a pure function over the snapshot — it performs no
// registry access of its own, so the exact merge semantics of
// snapshot_metrics() (per-thread shards summed under the registry mutex)
// carry over untouched, and exposition can never perturb a concurrent run.
//
// Name mapping (text format version 0.0.4):
//   * every metric gets the `dpgreedy_` namespace prefix;
//   * dots and other non-[a-zA-Z0-9_:] characters become underscores
//     (`stream.push_ns` -> `dpgreedy_stream_push_ns`);
//   * counters get the conventional `_total` suffix.
//
// Histograms expose the fixed power-of-two buckets cumulatively: bucket 0
// holds exactly the value 0 (`le="0"`), bucket b >= 1 holds [2^(b-1), 2^b)
// — an integer-valued histogram, so the inclusive upper bound `le` is
// 2^b - 1.  Trailing empty buckets are elided (the `+Inf` bucket always
// closes the series, equal to `_count`).
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace dpg::obs {

/// A metric name as exposed: prefixed, sanitized, optional suffix.
[[nodiscard]] std::string prometheus_metric_name(std::string_view name,
                                                 std::string_view suffix = "");

/// The whole snapshot in Prometheus text format (ends with a newline; empty
/// snapshot renders to an empty string).
[[nodiscard]] std::string prometheus_text(const MetricsSnapshot& snapshot);

/// Writes prometheus_text(snapshot) to `path` atomically (path.tmp +
/// rename), so a scraper reading the file never observes a torn write.
/// Returns false on IO failure.
[[nodiscard]] bool write_prometheus_file(const std::string& path,
                                         const MetricsSnapshot& snapshot);

/// Upper-bound estimate of the q-quantile (q in [0, 1]) from the
/// power-of-two buckets: the inclusive upper bound of the first bucket
/// whose cumulative count reaches q * count.  0 when the histogram is
/// empty.  Good to a factor of 2 — what a `stats` line needs.
[[nodiscard]] std::uint64_t histogram_quantile_upper(const HistogramData& data,
                                                     double q) noexcept;

}  // namespace dpg::obs
