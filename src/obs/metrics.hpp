// Process-wide metrics: named monotonic counters and fixed-bucket
// power-of-two histograms.
//
// Hot-path contract: when telemetry is disabled (the default) every
// Counter::add / Histogram::record is one relaxed atomic load and a
// predictable branch — nothing else.  When enabled, updates go to
// per-thread shards (each slot written only by its owner thread, read
// concurrently by snapshots through relaxed atomics), so there is no
// cross-thread contention and no allocation on the hot path; a thread's
// shard is allocated once, on its first enabled update.
//
// Handles are registered once (file-scope `obs::counter("name")` globals in
// the instrumented translation units) and are trivially copyable ids, so an
// update never performs a name lookup.  snapshot_metrics() merges every
// shard; reset_metrics() zeroes them.  Both expect traced work to be
// quiescent (joined/awaited), which every harness and test here guarantees.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dpg::obs {

/// Hard caps on distinct metric names (asserted in registration; the name
/// catalogue lives in docs/observability.md and is far below these).
inline constexpr std::size_t kMaxCounters = 128;
inline constexpr std::size_t kMaxHistograms = 32;

/// Histogram bucket b >= 1 holds values in [2^(b-1), 2^b); bucket 0 holds 0.
inline constexpr std::size_t kHistogramBuckets = 40;

namespace detail {
extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_spans_enabled;
void counter_add(std::uint32_t id, std::uint64_t delta) noexcept;
void histogram_record(std::uint32_t id, std::uint64_t value) noexcept;
}  // namespace detail

/// True when telemetry (metrics + tracing) is recording.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Flips recording on or off process-wide (off by default).
void set_enabled(bool on) noexcept;

/// True when trace spans record (in addition to enabled()).  Separately
/// toggleable so long-running servers and the overhead bench can keep the
/// cheap counters while dropping the two clock reads per span.
[[nodiscard]] inline bool spans_enabled() noexcept {
  return detail::g_spans_enabled.load(std::memory_order_relaxed);
}

/// Flips span recording (on by default; only observable while enabled()).
void set_spans_enabled(bool on) noexcept;

/// Handle to one named monotonic counter (trivially copyable id).
class Counter {
 public:
  void add(std::uint64_t delta = 1) const noexcept {
    if (!enabled()) return;
    detail::counter_add(id_, delta);
  }

 private:
  friend Counter counter(std::string_view name);
  explicit Counter(std::uint32_t id) noexcept : id_(id) {}
  std::uint32_t id_;
};

/// Handle to one named histogram (trivially copyable id).
class Histogram {
 public:
  void record(std::uint64_t value) const noexcept {
    if (!enabled()) return;
    detail::histogram_record(id_, value);
  }

 private:
  friend Histogram histogram(std::string_view name);
  explicit Histogram(std::uint32_t id) noexcept : id_(id) {}
  std::uint32_t id_;
};

/// Registers (or finds) the counter/histogram named `name` and returns its
/// handle.  Intended for file-scope handle globals; takes a registry mutex.
[[nodiscard]] Counter counter(std::string_view name);
[[nodiscard]] Histogram histogram(std::string_view name);

struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

/// A merged view over every thread shard, names sorted ascending.  Counters
/// with value 0 and histograms with count 0 are omitted.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, HistogramData>> histograms;
};

[[nodiscard]] MetricsSnapshot snapshot_metrics();

/// Zeroes every shard.  Caller must guarantee no concurrent updates.
void reset_metrics() noexcept;

/// Per-run deltas `after − before` over counters and histograms (names
/// sorted, zero deltas dropped) — what the engine attaches to a RunReport.
[[nodiscard]] MetricsSnapshot metrics_delta(const MetricsSnapshot& before,
                                            const MetricsSnapshot& after);

/// The counter's merged value in a snapshot; 0 when absent.
[[nodiscard]] std::uint64_t counter_value(const MetricsSnapshot& snapshot,
                                          std::string_view name) noexcept;

/// The whole snapshot as one JSON object (schema dpgreedy-metrics-v1).
[[nodiscard]] std::string metrics_json(const MetricsSnapshot& snapshot);

}  // namespace dpg::obs
