// Schedule serialization: CSV (machine-readable, round-trippable) and
// Graphviz DOT (the space-time diagram of Figs. 1/2/7 as a graph).
#pragma once

#include <string>

#include "core/flow.hpp"
#include "core/schedule.hpp"

namespace dpg {

/// CSV with columns kind,server,from,begin,end — one row per cache segment
/// (`kind=cache`, from empty) or transfer (`kind=transfer`, begin==end).
[[nodiscard]] std::string schedule_to_csv(const Schedule& schedule);

/// Parses the CSV form back (group_size must be supplied; it is pricing
/// metadata, not structure).
[[nodiscard]] Schedule schedule_from_csv(const std::string& text,
                                         std::size_t group_size = 1);

/// Graphviz DOT rendering of the space-time diagram: one node per event
/// (segment endpoints, transfer instants, service points), horizontal
/// edges for cache intervals, arrows for transfers.
[[nodiscard]] std::string schedule_to_dot(const Schedule& schedule,
                                          const Flow& flow,
                                          const std::string& title = "schedule");

}  // namespace dpg
