#include "core/request_index.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dpg {

RequestIndex::RequestIndex(const Flow& flow, std::size_t server_count,
                           ServerId origin) {
  rebuild(flow, server_count, origin);
}

void RequestIndex::rebuild(const Flow& flow, std::size_t server_count,
                           ServerId origin) {
  require(server_count > 0, "RequestIndex: need >= 1 server");
  require(origin < server_count, "RequestIndex: origin out of range");
  validate_flow(flow);
  m_ = server_count;

  const std::size_t n = flow.points.size() + 1;  // + origin node
  times_.resize(n);
  servers_.resize(n);
  snapshots_.assign(n * m_, kNone);
  q_prev_.assign(n, kNone);
  q_next_.assign(n, kNone);
  q_tail_.assign(m_, kNone);

  times_[0] = 0.0;
  servers_[0] = origin;
  for (std::size_t i = 1; i < n; ++i) {
    const ServicePoint& p = flow.points[i - 1];
    require(p.server < m_, "RequestIndex: service point server out of range");
    times_[i] = p.time;
    servers_[i] = p.server;
  }

  // Pre-scan: rolling pLast[m], snapshotted per node, plus the Q_j lists.
  p_last_.assign(m_, kNone);
  for (std::size_t i = 0; i < n; ++i) {
    // Snapshot BEFORE inserting node i: "most recent strictly before".
    std::copy(p_last_.begin(), p_last_.end(),
              snapshots_.begin() + static_cast<std::ptrdiff_t>(i * m_));
    const ServerId s = servers_[i];
    const std::int32_t tail = q_tail_[s];
    q_prev_[i] = tail;
    if (tail != kNone) q_next_[static_cast<std::size_t>(tail)] = static_cast<std::int32_t>(i);
    q_tail_[s] = static_cast<std::int32_t>(i);
    p_last_[s] = static_cast<std::int32_t>(i);
  }
}

}  // namespace dpg
