#include "core/request.hpp"

#include <algorithm>
#include <numeric>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dpg {

namespace {

const obs::Counter g_build_allocs = obs::counter("trace.build_allocs");
const obs::Counter g_sequences_built = obs::counter("trace.sequences_built");

}  // namespace

bool Request::contains(ItemId item) const noexcept {
  return std::binary_search(items.begin(), items.end(), item);
}

RequestSequence::RequestSequence(std::size_t server_count,
                                 std::size_t item_count,
                                 std::vector<RequestDraft> requests)
    : server_count_(server_count), item_count_(item_count) {
  std::size_t accesses = 0;
  for (const RequestDraft& r : requests) accesses += r.items.size();
  servers_.reserve(requests.size());
  times_.reserve(requests.size());
  items_pool_.reserve(accesses);
  item_offsets_.reserve(requests.size() + 1);
  item_offsets_.push_back(0);
  for (const RequestDraft& r : requests) {
    servers_.push_back(r.server);
    times_.push_back(r.time);
    items_pool_.insert(items_pool_.end(), r.items.begin(), r.items.end());
    item_offsets_.push_back(items_pool_.size());
  }
  bind_owned_primary();
  validate_columns(/*rows_normalized=*/false);
  build_item_index();
  g_sequences_built.add();
}

RequestSequence::RequestSequence(std::size_t server_count,
                                 std::size_t item_count,
                                 std::vector<ServerId> servers,
                                 std::vector<Time> times,
                                 std::vector<ItemId> items_pool,
                                 std::vector<std::size_t> item_offsets,
                                 bool rows_normalized)
    : server_count_(server_count),
      item_count_(item_count),
      servers_(std::move(servers)),
      times_(std::move(times)),
      items_pool_(std::move(items_pool)),
      item_offsets_(std::move(item_offsets)) {
  bind_owned_primary();
  validate_columns(rows_normalized);
  build_item_index();
  g_sequences_built.add();
}

void RequestSequence::bind_owned_primary() noexcept {
  servers_v_ = servers_;
  times_v_ = times_;
  items_pool_v_ = items_pool_;
  item_offsets_v_ = item_offsets_;
}

void RequestSequence::bind_owned_all() noexcept {
  bind_owned_primary();
  per_item_pool_v_ = per_item_pool_;
  per_item_offsets_v_ = per_item_offsets_;
}

RequestSequence::RequestSequence(const RequestSequence& other)
    : server_count_(other.server_count_),
      item_count_(other.item_count_),
      servers_(other.servers_),
      times_(other.times_),
      items_pool_(other.items_pool_),
      item_offsets_(other.item_offsets_),
      per_item_pool_(other.per_item_pool_),
      per_item_offsets_(other.per_item_offsets_),
      servers_v_(other.servers_v_),
      times_v_(other.times_v_),
      items_pool_v_(other.items_pool_v_),
      item_offsets_v_(other.item_offsets_v_),
      per_item_pool_v_(other.per_item_pool_v_),
      per_item_offsets_v_(other.per_item_offsets_v_),
      keeper_(other.keeper_) {
  // A borrowed copy shares the external buffer (keeper_ keeps it alive); an
  // owning copy got fresh vectors and must re-point its views at them.
  if (keeper_ == nullptr) bind_owned_all();
}

RequestSequence::RequestSequence(RequestSequence&& other) noexcept
    : server_count_(other.server_count_),
      item_count_(other.item_count_),
      servers_(std::move(other.servers_)),
      times_(std::move(other.times_)),
      items_pool_(std::move(other.items_pool_)),
      item_offsets_(std::move(other.item_offsets_)),
      per_item_pool_(std::move(other.per_item_pool_)),
      per_item_offsets_(std::move(other.per_item_offsets_)),
      servers_v_(other.servers_v_),
      times_v_(other.times_v_),
      items_pool_v_(other.items_pool_v_),
      item_offsets_v_(other.item_offsets_v_),
      per_item_pool_v_(other.per_item_pool_v_),
      per_item_offsets_v_(other.per_item_offsets_v_),
      keeper_(std::move(other.keeper_)) {
  // Moved vectors keep their heap buffers, so the copied views stay valid;
  // rebind anyway so the invariant "views alias *this* object's storage or
  // keeper_'s buffer" holds even for empty short vectors.
  if (keeper_ == nullptr) bind_owned_all();
  other.servers_v_ = {};
  other.times_v_ = {};
  other.items_pool_v_ = {};
  other.item_offsets_v_ = {};
  other.per_item_pool_v_ = {};
  other.per_item_offsets_v_ = {};
}

RequestSequence& RequestSequence::operator=(const RequestSequence& other) {
  if (this != &other) {
    RequestSequence copy(other);
    *this = std::move(copy);
  }
  return *this;
}

RequestSequence& RequestSequence::operator=(RequestSequence&& other) noexcept {
  if (this != &other) {
    server_count_ = other.server_count_;
    item_count_ = other.item_count_;
    servers_ = std::move(other.servers_);
    times_ = std::move(other.times_);
    items_pool_ = std::move(other.items_pool_);
    item_offsets_ = std::move(other.item_offsets_);
    per_item_pool_ = std::move(other.per_item_pool_);
    per_item_offsets_ = std::move(other.per_item_offsets_);
    servers_v_ = other.servers_v_;
    times_v_ = other.times_v_;
    items_pool_v_ = other.items_pool_v_;
    item_offsets_v_ = other.item_offsets_v_;
    per_item_pool_v_ = other.per_item_pool_v_;
    per_item_offsets_v_ = other.per_item_offsets_v_;
    keeper_ = std::move(other.keeper_);
    if (keeper_ == nullptr) bind_owned_all();
    other.servers_v_ = {};
    other.times_v_ = {};
    other.items_pool_v_ = {};
    other.item_offsets_v_ = {};
    other.per_item_pool_v_ = {};
    other.per_item_offsets_v_ = {};
  }
  return *this;
}

RequestSequence RequestSequence::adopt_columns(
    std::size_t server_count, std::size_t item_count,
    const SequenceColumns& columns, std::shared_ptr<const void> keeper,
    bool verify_columns) {
  RequestSequence seq;
  seq.server_count_ = server_count;
  seq.item_count_ = item_count;
  seq.servers_v_ = columns.servers;
  seq.times_v_ = columns.times;
  seq.items_pool_v_ = columns.items_pool;
  seq.item_offsets_v_ = columns.item_offsets;
  seq.per_item_pool_v_ = columns.per_item_pool;
  seq.per_item_offsets_v_ = columns.per_item_offsets;
  seq.keeper_ = std::move(keeper);
  require(seq.keeper_ != nullptr,
          "adopt_columns: a keeper must own the column storage");

  // Structural consistency is always enforced — accessors index these
  // arrays against each other, so mismatched sizes would be UB, not just a
  // wrong answer.
  const std::size_t n = columns.servers.size();
  require(columns.times.size() == n, "adopt_columns: times size mismatch");
  require(columns.item_offsets.size() == n + 1,
          "adopt_columns: item_offsets must have n + 1 entries");
  require(columns.item_offsets.front() == 0,
          "adopt_columns: item_offsets must start at 0");
  require(columns.item_offsets.back() == columns.items_pool.size(),
          "adopt_columns: item_offsets must end at the pool size");
  require(std::is_sorted(columns.item_offsets.begin(),
                         columns.item_offsets.end()),
          "adopt_columns: item_offsets must be non-decreasing");
  require(columns.per_item_offsets.size() == item_count + 1,
          "adopt_columns: per_item_offsets must have k + 1 entries");
  require(columns.per_item_offsets.front() == 0,
          "adopt_columns: per_item_offsets must start at 0");
  require(columns.per_item_offsets.back() == columns.per_item_pool.size(),
          "adopt_columns: per_item_offsets must end at its pool size");
  require(std::is_sorted(columns.per_item_offsets.begin(),
                         columns.per_item_offsets.end()),
          "adopt_columns: per_item_offsets must be non-decreasing");
  require(columns.per_item_pool.size() == columns.items_pool.size(),
          "adopt_columns: inverted-index pool size mismatch");

  if (verify_columns) {
    seq.validate_columns(/*rows_normalized=*/false);
    // Cross-check the stored inverted index against a rebuild: the borrowed
    // views stay in place, the rebuilt owned vectors are just compared and
    // discarded (vectors stay small-but-allocated only on this slow path).
    RequestSequence rebuilt;
    rebuilt.server_count_ = server_count;
    rebuilt.item_count_ = item_count;
    rebuilt.servers_v_ = columns.servers;
    rebuilt.times_v_ = columns.times;
    rebuilt.items_pool_v_ = columns.items_pool;
    rebuilt.item_offsets_v_ = columns.item_offsets;
    rebuilt.build_item_index();
    require(std::equal(rebuilt.per_item_pool_.begin(),
                       rebuilt.per_item_pool_.end(),
                       columns.per_item_pool.begin(),
                       columns.per_item_pool.end()) &&
                std::equal(rebuilt.per_item_offsets_.begin(),
                           rebuilt.per_item_offsets_.end(),
                           columns.per_item_offsets.begin(),
                           columns.per_item_offsets.end()),
            "adopt_columns: stored inverted index does not match the items");
  } else {
    // Even the trusting path range-checks every id that is used as an index
    // downstream: an out-of-range item id would index per_item_offsets_ out
    // of bounds later, and an out-of-range server id would index per-server
    // state (RequestIndex snapshots, queue tails) out of bounds.
    for (const ServerId server : columns.servers) {
      require(server < server_count, "adopt_columns: server id out of range");
    }
    for (const ItemId item : columns.items_pool) {
      require(item < item_count, "adopt_columns: item id out of range");
    }
    for (const std::size_t row : columns.per_item_pool) {
      require(row < n, "adopt_columns: inverted index row out of range");
    }
  }
  g_sequences_built.add();
  return seq;
}

void RequestSequence::validate_columns(bool rows_normalized) const {
  require(server_count_ > 0, "RequestSequence: need >= 1 server");
  require(item_count_ > 0, "RequestSequence: need >= 1 item");
  // One tight pass per flat array (not one combined per-row loop): each
  // check vectorizes, and failure messages are built only on the throw path
  // ("+ std::to_string(i)" eagerly would heap-allocate per request).
  const std::size_t n = servers_v_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (servers_v_[i] >= server_count_) {
      throw InvalidArgument("RequestSequence: server id out of range at "
                            "request " + std::to_string(i));
    }
  }
  Time previous = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!(times_v_[i] > previous)) {
      throw InvalidArgument(
          "RequestSequence: times must be strictly increasing and > 0 "
          "(violated at request " + std::to_string(i) + ")");
    }
    previous = times_v_[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (item_offsets_v_[i + 1] == item_offsets_v_[i]) {
      throw InvalidArgument("RequestSequence: empty item set at request " +
                            std::to_string(i));
    }
  }
  if (!rows_normalized) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::span<const ItemId> items = items_of(i);
      if (!std::is_sorted(items.begin(), items.end()) ||
          std::adjacent_find(items.begin(), items.end()) != items.end()) {
        throw InvalidArgument(
            "RequestSequence: item set must be sorted and duplicate-free at "
            "request " + std::to_string(i));
      }
    }
  }
}

void RequestSequence::build_item_index() {
  // Per-item inverted index as one flat pool + offsets: counting pass over
  // the items pool, prefix sum, then a scatter pass.  The scatter advances
  // per_item_offsets_[item] to the end of item's range, so a final shift
  // restores the offsets — no per-item vectors, no cursor copy.  The item
  // range check rides on the counting pass (one pool scan, not two).
  per_item_offsets_.assign(item_count_ + 1, 0);
  for (const ItemId item : items_pool_v_) {
    if (item >= item_count_) {
      // Recover the offending row for the message (cold path only).
      const std::size_t at = static_cast<std::size_t>(
          &item - items_pool_v_.data());
      const std::size_t row = static_cast<std::size_t>(
          std::upper_bound(item_offsets_v_.begin(), item_offsets_v_.end(),
                           at) -
          item_offsets_v_.begin()) - 1;
      throw InvalidArgument("RequestSequence: item id out of range at "
                            "request " + std::to_string(row));
    }
    ++per_item_offsets_[item + 1];
  }
  std::partial_sum(per_item_offsets_.begin(), per_item_offsets_.end(),
                   per_item_offsets_.begin());
  per_item_pool_.resize(items_pool_v_.size());
  for (std::size_t i = 0; i < servers_v_.size(); ++i) {
    for (const ItemId item : items_of(i)) {
      per_item_pool_[per_item_offsets_[item]++] = i;
    }
  }
  for (std::size_t item = item_count_; item > 0; --item) {
    per_item_offsets_[item] = per_item_offsets_[item - 1];
  }
  per_item_offsets_[0] = 0;
  per_item_pool_v_ = per_item_pool_;
  per_item_offsets_v_ = per_item_offsets_;
}

std::size_t RequestSequence::item_frequency(ItemId item) const {
  require(item < item_count_, "item_frequency: item out of range");
  return per_item_offsets_v_[item + 1] - per_item_offsets_v_[item];
}

std::size_t RequestSequence::pair_frequency(ItemId a, ItemId b) const {
  require(a < item_count_ && b < item_count_, "pair_frequency: item out of range");
  const std::span<const std::size_t> ia = indices_for_item(a);
  const std::span<const std::size_t> ib = indices_for_item(b);
  std::size_t count = 0;
  std::size_t x = 0, y = 0;
  while (x < ia.size() && y < ib.size()) {
    if (ia[x] == ib[y]) {
      ++count;
      ++x;
      ++y;
    } else if (ia[x] < ib[y]) {
      ++x;
    } else {
      ++y;
    }
  }
  return count;
}

std::span<const std::size_t> RequestSequence::indices_for_item(
    ItemId item) const {
  require(item < item_count_, "indices_for_item: item out of range");
  return {per_item_pool_v_.data() + per_item_offsets_v_[item],
          per_item_offsets_v_[item + 1] - per_item_offsets_v_[item]};
}

std::string RequestSequence::to_string() const {
  std::string out = "RequestSequence(m=" + std::to_string(server_count_) +
                    ", k=" + std::to_string(item_count_) +
                    ", n=" + std::to_string(size()) + ")\n";
  for (std::size_t i = 0; i < size(); ++i) {
    out += "  t=" + format_fixed(times_v_[i], 3) +
           " s=" + std::to_string(servers_v_[i]) + " items={";
    const std::span<const ItemId> items = items_of(i);
    for (std::size_t j = 0; j < items.size(); ++j) {
      if (j > 0) out += ",";
      out += std::to_string(items[j]);
    }
    out += "}\n";
  }
  return out;
}

SequenceBuilder::SequenceBuilder(std::size_t server_count,
                                 std::size_t item_count)
    : server_count_(server_count), item_count_(item_count) {
  item_offsets_.push_back(0);
}

SequenceBuilder& SequenceBuilder::reserve(std::size_t request_count,
                                          std::size_t item_access_count) {
  servers_.reserve(request_count);
  times_.reserve(request_count);
  item_offsets_.reserve(request_count + 1);
  items_pool_.reserve(item_access_count);
  return *this;
}

SequenceBuilder& SequenceBuilder::add(ServerId server, Time time,
                                      std::vector<ItemId> items) {
  begin_request(server, time);
  for (const ItemId item : items) push_item(item);
  return end_request();
}

RequestSequence SequenceBuilder::build() && {
  return std::move(*this).build_with_counts(server_count_, item_count_);
}

RequestSequence SequenceBuilder::build_with_counts(std::size_t server_count,
                                                   std::size_t item_count) && {
  require(!row_open_, "SequenceBuilder: build with a row still open");
  if (!std::is_sorted(times_.begin(), times_.end())) {
    // Stable permutation sort by time, then rebuild every array in permuted
    // order (the CSR pool cannot be permuted in place row-wise).
    std::vector<std::uint32_t> order(servers_.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                       return times_[a] < times_[b];
                     });
    std::vector<ServerId> servers;
    std::vector<Time> times;
    std::vector<ItemId> pool;
    std::vector<std::size_t> offsets;
    servers.reserve(servers_.size());
    times.reserve(times_.size());
    pool.reserve(items_pool_.size());
    offsets.reserve(item_offsets_.size());
    offsets.push_back(0);
    grow_events_ += 4;
    for (const std::uint32_t row : order) {
      servers.push_back(servers_[row]);
      times.push_back(times_[row]);
      pool.insert(pool.end(),
                  items_pool_.begin() +
                      static_cast<std::ptrdiff_t>(item_offsets_[row]),
                  items_pool_.begin() +
                      static_cast<std::ptrdiff_t>(item_offsets_[row + 1]));
      offsets.push_back(pool.size());
    }
    servers_ = std::move(servers);
    times_ = std::move(times);
    items_pool_ = std::move(pool);
    item_offsets_ = std::move(offsets);
  }
  g_build_allocs.add(grow_events_);
  return RequestSequence(server_count, item_count, std::move(servers_),
                         std::move(times_), std::move(items_pool_),
                         std::move(item_offsets_), /*rows_normalized=*/true);
}

}  // namespace dpg
