#include "core/request.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dpg {

bool Request::contains(ItemId item) const noexcept {
  return std::binary_search(items.begin(), items.end(), item);
}

RequestSequence::RequestSequence(std::size_t server_count,
                                 std::size_t item_count,
                                 std::vector<Request> requests)
    : server_count_(server_count),
      item_count_(item_count),
      requests_(std::move(requests)),
      per_item_indices_(item_count) {
  require(server_count_ > 0, "RequestSequence: need >= 1 server");
  require(item_count_ > 0, "RequestSequence: need >= 1 item");
  Time previous = 0.0;
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    const Request& r = requests_[i];
    require(r.server < server_count_,
            "RequestSequence: server id out of range at request " +
                std::to_string(i));
    require(r.time > previous,
            "RequestSequence: times must be strictly increasing and > 0 "
            "(violated at request " + std::to_string(i) + ")");
    previous = r.time;
    require(!r.items.empty(),
            "RequestSequence: empty item set at request " + std::to_string(i));
    require(std::is_sorted(r.items.begin(), r.items.end()) &&
                std::adjacent_find(r.items.begin(), r.items.end()) ==
                    r.items.end(),
            "RequestSequence: item set must be sorted and duplicate-free at "
            "request " + std::to_string(i));
    require(r.items.back() < item_count_,
            "RequestSequence: item id out of range at request " +
                std::to_string(i));
    for (const ItemId item : r.items) {
      per_item_indices_[item].push_back(i);
      ++total_item_accesses_;
    }
  }
}

std::size_t RequestSequence::item_frequency(ItemId item) const {
  require(item < item_count_, "item_frequency: item out of range");
  return per_item_indices_[item].size();
}

std::size_t RequestSequence::pair_frequency(ItemId a, ItemId b) const {
  require(a < item_count_ && b < item_count_, "pair_frequency: item out of range");
  const auto& ia = per_item_indices_[a];
  const auto& ib = per_item_indices_[b];
  std::size_t count = 0;
  std::size_t x = 0, y = 0;
  while (x < ia.size() && y < ib.size()) {
    if (ia[x] == ib[y]) {
      ++count;
      ++x;
      ++y;
    } else if (ia[x] < ib[y]) {
      ++x;
    } else {
      ++y;
    }
  }
  return count;
}

const std::vector<std::size_t>& RequestSequence::indices_for_item(
    ItemId item) const {
  require(item < item_count_, "indices_for_item: item out of range");
  return per_item_indices_[item];
}

std::string RequestSequence::to_string() const {
  std::string out = "RequestSequence(m=" + std::to_string(server_count_) +
                    ", k=" + std::to_string(item_count_) +
                    ", n=" + std::to_string(requests_.size()) + ")\n";
  for (const Request& r : requests_) {
    out += "  t=" + format_fixed(r.time, 3) + " s=" + std::to_string(r.server) +
           " items={";
    for (std::size_t j = 0; j < r.items.size(); ++j) {
      if (j > 0) out += ",";
      out += std::to_string(r.items[j]);
    }
    out += "}\n";
  }
  return out;
}

SequenceBuilder::SequenceBuilder(std::size_t server_count,
                                 std::size_t item_count)
    : server_count_(server_count), item_count_(item_count) {}

SequenceBuilder& SequenceBuilder::add(ServerId server, Time time,
                                      std::vector<ItemId> items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  requests_.push_back(Request{server, time, std::move(items)});
  return *this;
}

RequestSequence SequenceBuilder::build() && {
  std::stable_sort(requests_.begin(), requests_.end(),
                   [](const Request& a, const Request& b) {
                     return a.time < b.time;
                   });
  return RequestSequence(server_count_, item_count_, std::move(requests_));
}

}  // namespace dpg
