#include "core/interval_set.hpp"

#include <algorithm>

namespace dpg {

void IntervalSet::normalize() const {
  if (normalized_) return;
  std::sort(intervals_.begin(), intervals_.end());
  std::vector<std::pair<Time, Time>> merged;
  merged.reserve(intervals_.size());
  for (const auto& [b, e] : intervals_) {
    if (!merged.empty() && b <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, e);
    } else {
      merged.emplace_back(b, e);
    }
  }
  intervals_ = std::move(merged);
  normalized_ = true;
}

Time IntervalSet::union_length() const {
  normalize();
  Time total = 0.0;
  for (const auto& [b, e] : intervals_) total += e - b;
  return total;
}

Time IntervalSet::uncovered_within(Time lo, Time hi) const {
  if (hi <= lo) return 0.0;
  normalize();
  Time covered = 0.0;
  for (const auto& [b, e] : intervals_) {
    const Time begin = std::max(b, lo);
    const Time end = std::min(e, hi);
    if (end > begin) covered += end - begin;
  }
  return (hi - lo) - covered;
}

bool IntervalSet::covers(Time t) const {
  normalize();
  // Merged intervals are sorted and disjoint: binary search the candidate.
  const auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](Time value, const std::pair<Time, Time>& interval) {
        return value < interval.first;
      });
  if (it == intervals_.begin()) return false;
  const auto& candidate = *(it - 1);
  return candidate.first <= t && t <= candidate.second;
}

std::vector<std::pair<Time, Time>> IntervalSet::merged() const {
  normalize();
  return intervals_;
}

}  // namespace dpg
