// Space-time schedules (Figs. 1, 2 and 7 of the paper).
//
// A Schedule records, for one flow, the horizontal cache intervals (a copy
// held at a server across a time span) and the vertical transfer edges (a
// copy shipped between servers at an instant).  It knows how to price itself
// under a CostModel and how to check its own feasibility: every cache
// interval and transfer must be *grounded* in a causal chain back to the
// origin copy, and every service point of the flow must be covered.
#pragma once

#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "core/flow.hpp"
#include "core/types.hpp"

namespace dpg {

/// A copy held at `server` over [begin, end].
struct CacheSegment {
  ServerId server = 0;
  Time begin = 0.0;
  Time end = 0.0;
};

/// A copy shipped from `from` to `to` at instant `time` (standard form:
/// transfers occur at request times).  Transfers replicate: the source copy
/// is not destroyed by the move.
struct TransferEdge {
  ServerId from = 0;
  ServerId to = 0;
  Time time = 0.0;
};

/// Outcome of Schedule::validate.
struct ValidationResult {
  bool ok = true;
  std::string message;  // first violation, empty when ok
};

class Schedule {
 public:
  /// `group_size` is the number of items travelling together (pricing).
  explicit Schedule(std::size_t group_size = 1) : group_size_(group_size) {}

  void add_segment(ServerId server, Time begin, Time end);
  void add_transfer(ServerId from, ServerId to, Time time);

  [[nodiscard]] const std::vector<CacheSegment>& segments() const noexcept {
    return segments_;
  }
  [[nodiscard]] const std::vector<TransferEdge>& transfers() const noexcept {
    return transfers_;
  }
  [[nodiscard]] std::size_t group_size() const noexcept { return group_size_; }

  /// Total cached time, with overlapping segments on the same server
  /// counted once (a server never needs two copies of the same flow).
  [[nodiscard]] Time total_cache_time() const;

  /// Undiscounted cost: μ · total_cache_time + λ · |transfers|.
  [[nodiscard]] Cost raw_cost(const CostModel& model) const;

  /// Discounted cost: flow_multiplier(group_size) · raw_cost.
  [[nodiscard]] Cost cost(const CostModel& model) const;

  /// Checks causality (every segment/transfer reachable from the origin
  /// copy at (origin, 0)) and coverage (every service point of `flow`
  /// has a copy present at its server at its time).
  [[nodiscard]] ValidationResult validate(const Flow& flow,
                                          ServerId origin = kOriginServer) const;

  /// Merges two schedules (used to combine per-flow plans into reports).
  void append(const Schedule& other);

  /// ASCII space-time rendering for examples/tests (one line per server).
  [[nodiscard]] std::string render(std::size_t server_count,
                                   double time_scale = 10.0) const;

 private:
  std::size_t group_size_;
  std::vector<CacheSegment> segments_;
  std::vector<TransferEdge> transfers_;
};

}  // namespace dpg
