// Requests and request sequences (Section III-A).
//
// A request r_i = <s_i, t_i, D_i> asks for the item subset D_i at server s_i
// at time t_i.  A RequestSequence is the offline input of the problem: the
// full spatio-temporal trajectory, strictly ordered by time (the paper
// assumes at most one request per time instance).
//
// Storage is a flat CSR (structure-of-arrays) layout: one servers_[] array,
// one times_[] array, and a single items pool indexed by item_offsets_[]
// (n + 1 entries), so walking a sequence touches contiguous memory and a
// sequence of n requests costs O(1) owning arrays instead of n item vectors.
// The per-item inverted index is the same shape — one flat pool of request
// indices plus per_item_offsets_[] (k + 1 entries), built with a counting
// pass.  `Request` is a lightweight non-owning view into those arrays.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "util/error.hpp"

namespace dpg {

/// One timed request for a subset of items at one server — a non-owning view
/// into a RequestSequence's CSR arrays (32 bytes, pass by value).
struct Request {
  ServerId server = 0;
  Time time = 0.0;
  std::span<const ItemId> items;  // sorted, unique

  [[nodiscard]] bool contains(ItemId item) const noexcept;
};

/// Build-side owning request used to construct sequences item-vector-first
/// (tests, small fixtures).  Bulk producers should prefer SequenceBuilder's
/// streaming API, which never materializes per-request vectors.
struct RequestDraft {
  ServerId server = 0;
  Time time = 0.0;
  std::vector<ItemId> items;
};

/// The six CSR columns of a RequestSequence, as non-owning views.  Used by
/// the binary trace reader (trace/dpt.cpp) to hand a sequence columns that
/// live in an mmap'ed file, and by callers that want the raw arrays.
struct SequenceColumns {
  std::span<const ServerId> servers;               // n
  std::span<const Time> times;                     // n
  std::span<const ItemId> items_pool;              // Σ|d_i|
  std::span<const std::size_t> item_offsets;       // n + 1
  std::span<const std::size_t> per_item_pool;      // Σ|d_i|
  std::span<const std::size_t> per_item_offsets;   // k + 1
};

/// The validated offline input: m servers, k items, n requests in strictly
/// increasing time order.  Item 0..k-1 all start on server 0 at time 0.
///
/// Storage is either *owned* (the usual constructors and SequenceBuilder) or
/// *borrowed* (adopt_columns): every accessor reads through span views that
/// point at the owned vectors or at an external buffer kept alive by a
/// type-erased keeper.  Borrowed sequences are what the `.dpt` mmap path
/// produces — opening a multi-GB trace touches no column bytes at all.
class RequestSequence {
 public:
  /// Validates and flattens into the CSR layout.  Requirements: strictly
  /// increasing times > 0, server ids < server_count, item ids < item_count,
  /// item sets non-empty / sorted / duplicate-free.  Throws InvalidArgument.
  RequestSequence(std::size_t server_count, std::size_t item_count,
                  std::vector<RequestDraft> requests);

  // Views must be re-pointed at the owned vectors whenever those move, so
  // copies/moves are explicit (all O(1) except the owning copy).
  RequestSequence(const RequestSequence& other);
  RequestSequence(RequestSequence&& other) noexcept;
  RequestSequence& operator=(const RequestSequence& other);
  RequestSequence& operator=(RequestSequence&& other) noexcept;
  ~RequestSequence() = default;

  /// Adopts externally stored CSR columns without copying them.  `keeper`
  /// owns the storage (e.g. an mmap'ed file) and is held until every copy of
  /// the sequence is gone.  Structural consistency (sizes, offset bounds) is
  /// always checked; `verify_columns` additionally re-runs the full logical
  /// validation and cross-checks the provided inverted index against a
  /// rebuild — callers normally rely on the file checksums instead.
  /// Throws InvalidArgument on any inconsistency.
  [[nodiscard]] static RequestSequence adopt_columns(
      std::size_t server_count, std::size_t item_count,
      const SequenceColumns& columns, std::shared_ptr<const void> keeper,
      bool verify_columns = false);

  [[nodiscard]] std::size_t server_count() const noexcept { return server_count_; }
  [[nodiscard]] std::size_t item_count() const noexcept { return item_count_; }
  [[nodiscard]] std::size_t size() const noexcept { return servers_v_.size(); }
  [[nodiscard]] bool empty() const noexcept { return servers_v_.empty(); }

  /// True when the columns are views into an external buffer (mmap path).
  [[nodiscard]] bool borrows_storage() const noexcept {
    return keeper_ != nullptr;
  }

  [[nodiscard]] Request operator[](std::size_t i) const noexcept {
    return Request{servers_v_[i], times_v_[i], items_of(i)};
  }

  /// The item set of request `i` — a view into the contiguous items pool.
  [[nodiscard]] std::span<const ItemId> items_of(std::size_t i) const noexcept {
    return {items_pool_v_.data() + item_offsets_v_[i],
            item_offsets_v_[i + 1] - item_offsets_v_[i]};
  }
  [[nodiscard]] ServerId server_of(std::size_t i) const noexcept {
    return servers_v_[i];
  }
  [[nodiscard]] Time time_of(std::size_t i) const noexcept {
    return times_v_[i];
  }

  /// The raw column arrays (for vectorized passes over the whole sequence).
  [[nodiscard]] std::span<const ServerId> servers() const noexcept {
    return servers_v_;
  }
  [[nodiscard]] std::span<const Time> times() const noexcept {
    return times_v_;
  }

  /// All six CSR columns at once (what the `.dpt` writer serializes).
  [[nodiscard]] SequenceColumns columns() const noexcept {
    return SequenceColumns{servers_v_,        times_v_,
                           items_pool_v_,     item_offsets_v_,
                           per_item_pool_v_,  per_item_offsets_v_};
  }

  /// Forward iterator yielding Request views by value.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Request;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = Request;

    const_iterator() = default;
    [[nodiscard]] Request operator*() const noexcept { return (*seq_)[i_]; }
    const_iterator& operator++() noexcept {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) noexcept {
      const_iterator copy = *this;
      ++i_;
      return copy;
    }
    [[nodiscard]] bool operator==(const const_iterator&) const noexcept =
        default;

   private:
    friend class RequestSequence;
    const_iterator(const RequestSequence* seq, std::size_t i) noexcept
        : seq_(seq), i_(i) {}
    const RequestSequence* seq_ = nullptr;
    std::size_t i_ = 0;
  };

  /// Lightweight iterable over the sequence's Request views.
  class RequestRange {
   public:
    [[nodiscard]] const_iterator begin() const noexcept {
      return {seq_, 0};
    }
    [[nodiscard]] const_iterator end() const noexcept {
      return {seq_, seq_->size()};
    }
    [[nodiscard]] std::size_t size() const noexcept { return seq_->size(); }
    [[nodiscard]] bool empty() const noexcept { return seq_->empty(); }
    [[nodiscard]] Request operator[](std::size_t i) const noexcept {
      return (*seq_)[i];
    }

   private:
    friend class RequestSequence;
    explicit RequestRange(const RequestSequence* seq) noexcept : seq_(seq) {}
    const RequestSequence* seq_;
  };

  [[nodiscard]] RequestRange requests() const noexcept {
    return RequestRange{this};
  }

  /// Number of requests whose item set contains `item` (the |d_i| of Eq. 5).
  [[nodiscard]] std::size_t item_frequency(ItemId item) const;

  /// Number of requests containing both items (the |(d_i, d_j)| of Eq. 5).
  [[nodiscard]] std::size_t pair_frequency(ItemId a, ItemId b) const;

  /// Total item-accesses Σ_i |d_i| — the ave_cost denominator of Algorithm 1.
  [[nodiscard]] std::size_t total_item_accesses() const noexcept {
    return items_pool_v_.size();
  }

  /// Indices (into the sequence) of requests containing `item`, in time
  /// order — a view into the flat inverted-index pool.
  [[nodiscard]] std::span<const std::size_t> indices_for_item(ItemId item) const;

  /// Human-readable one-line-per-request dump (debugging/tests).
  [[nodiscard]] std::string to_string() const;

 private:
  friend class SequenceBuilder;

  RequestSequence() = default;  // adopt_columns' blank slate

  /// Takes ownership of pre-flattened CSR arrays, then validates and builds
  /// the per-item inverted index (SequenceBuilder's fast path).
  /// `rows_normalized` asserts that every row is already sorted and
  /// duplicate-free (end_request()'s invariant), skipping that re-check.
  RequestSequence(std::size_t server_count, std::size_t item_count,
                  std::vector<ServerId> servers, std::vector<Time> times,
                  std::vector<ItemId> items_pool,
                  std::vector<std::size_t> item_offsets, bool rows_normalized);

  /// Points the primary-column views at the owned vectors.
  void bind_owned_primary() noexcept;
  /// Points all six views at the owned vectors (owning sequences only).
  void bind_owned_all() noexcept;
  /// Checks the row invariants through the views (throws InvalidArgument).
  void validate_columns(bool rows_normalized) const;
  /// Builds the owned inverted index from the primary views and binds its
  /// views; also range-checks item ids (rides on the counting pass).
  void build_item_index();

  std::size_t server_count_ = 0;
  std::size_t item_count_ = 0;

  // Owned storage — empty when the sequence borrows (keeper_ != nullptr).
  std::vector<ServerId> servers_;            // n
  std::vector<Time> times_;                  // n
  std::vector<ItemId> items_pool_;           // Σ|d_i|
  std::vector<std::size_t> item_offsets_;    // n + 1
  std::vector<std::size_t> per_item_pool_;   // Σ|d_i| request indices
  std::vector<std::size_t> per_item_offsets_;  // k + 1

  // Every accessor reads these views; they alias the vectors above or an
  // external buffer whose lifetime keeper_ pins.
  std::span<const ServerId> servers_v_;
  std::span<const Time> times_v_;
  std::span<const ItemId> items_pool_v_;
  std::span<const std::size_t> item_offsets_v_;
  std::span<const std::size_t> per_item_pool_v_;
  std::span<const std::size_t> per_item_offsets_v_;
  std::shared_ptr<const void> keeper_;
};

/// Convenience builder used heavily by tests, generators and the streaming
/// CSV parser: requests may be appended in any order and are sorted by time
/// on build(); times must still end up unique.
///
/// Appends go straight into the flat CSR arrays, so building an n-request
/// sequence performs O(1) amortized allocations (array doublings), not O(n).
class SequenceBuilder {
 public:
  SequenceBuilder(std::size_t server_count, std::size_t item_count);

  /// Pre-sizes the flat arrays for `request_count` rows holding
  /// `item_access_count` item ids in total.
  SequenceBuilder& reserve(std::size_t request_count,
                           std::size_t item_access_count);

  /// Appends one request; items are sorted and deduplicated.
  SequenceBuilder& add(ServerId server, Time time, std::vector<ItemId> items);

  /// Streaming append without a per-request vector: open a row, push its
  /// item ids, close it.  end_request() sorts and deduplicates the row.
  /// Defined inline — these are the per-row hot path of the CSV parser.
  SequenceBuilder& begin_request(ServerId server, Time time) {
    require(!row_open_, "SequenceBuilder: begin_request with a row open");
    push(servers_, server);
    push(times_, time);
    row_open_ = true;
    return *this;
  }
  SequenceBuilder& push_item(ItemId item) {
    require(row_open_, "SequenceBuilder: push_item without begin_request");
    push(items_pool_, item);
    return *this;
  }
  SequenceBuilder& end_request() {
    require(row_open_, "SequenceBuilder: end_request without begin_request");
    row_open_ = false;
    const std::size_t begin = item_offsets_.back();
    const std::size_t count = items_pool_.size() - begin;
    if (count == 2) {
      // The overwhelmingly common row shapes (1–2 items) skip the sort call.
      ItemId& a = items_pool_[begin];
      ItemId& b = items_pool_[begin + 1];
      if (a > b) std::swap(a, b);
      if (a == b) items_pool_.pop_back();
    } else if (count > 2) {
      const auto first =
          items_pool_.begin() + static_cast<std::ptrdiff_t>(begin);
      std::sort(first, items_pool_.end());
      items_pool_.erase(std::unique(first, items_pool_.end()),
                        items_pool_.end());
    }
    push(item_offsets_, items_pool_.size());
    return *this;
  }

  /// Requests appended so far.
  [[nodiscard]] std::size_t size() const noexcept { return servers_.size(); }

  /// Number of array-capacity growth events so far — the builder's total
  /// allocation count (O(log n) with no reserve(), 0 after an adequate one).
  [[nodiscard]] std::uint64_t grow_events() const noexcept {
    return grow_events_;
  }

  /// Sorts, validates and produces the immutable sequence.
  [[nodiscard]] RequestSequence build() &&;

  /// build() with explicit final dimensions — used by parsers that discover
  /// the server/item universe while streaming rows in.
  [[nodiscard]] RequestSequence build_with_counts(std::size_t server_count,
                                                  std::size_t item_count) &&;

 private:
  template <typename Vector, typename Value>
  void push(Vector& vector, Value value) {
    if (vector.size() == vector.capacity()) ++grow_events_;
    vector.push_back(value);
  }

  std::size_t server_count_;
  std::size_t item_count_;
  std::vector<ServerId> servers_;
  std::vector<Time> times_;
  std::vector<ItemId> items_pool_;
  std::vector<std::size_t> item_offsets_;  // always size() + 1 when closed
  std::uint64_t grow_events_ = 0;
  bool row_open_ = false;
};

}  // namespace dpg
