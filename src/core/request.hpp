// Requests and request sequences (Section III-A).
//
// A request r_i = <s_i, t_i, D_i> asks for the item subset D_i at server s_i
// at time t_i.  A RequestSequence is the offline input of the problem: the
// full spatio-temporal trajectory, strictly ordered by time (the paper
// assumes at most one request per time instance).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace dpg {

/// One timed request for a subset of items at one server.
struct Request {
  ServerId server = 0;
  Time time = 0.0;
  std::vector<ItemId> items;  // sorted, unique

  [[nodiscard]] bool contains(ItemId item) const noexcept;
};

/// The validated offline input: m servers, k items, n requests in strictly
/// increasing time order.  Item 0..k-1 all start on server 0 at time 0.
class RequestSequence {
 public:
  /// Validates and takes ownership.  Requirements: strictly increasing
  /// times > 0, server ids < server_count, item ids < item_count, item sets
  /// non-empty / sorted / duplicate-free.  Throws InvalidArgument.
  RequestSequence(std::size_t server_count, std::size_t item_count,
                  std::vector<Request> requests);

  [[nodiscard]] std::size_t server_count() const noexcept { return server_count_; }
  [[nodiscard]] std::size_t item_count() const noexcept { return item_count_; }
  [[nodiscard]] std::size_t size() const noexcept { return requests_.size(); }
  [[nodiscard]] bool empty() const noexcept { return requests_.empty(); }

  [[nodiscard]] const Request& operator[](std::size_t i) const noexcept {
    return requests_[i];
  }
  [[nodiscard]] std::span<const Request> requests() const noexcept {
    return requests_;
  }

  /// Number of requests whose item set contains `item` (the |d_i| of Eq. 5).
  [[nodiscard]] std::size_t item_frequency(ItemId item) const;

  /// Number of requests containing both items (the |(d_i, d_j)| of Eq. 5).
  [[nodiscard]] std::size_t pair_frequency(ItemId a, ItemId b) const;

  /// Total item-accesses Σ_i |d_i| — the ave_cost denominator of Algorithm 1.
  [[nodiscard]] std::size_t total_item_accesses() const noexcept {
    return total_item_accesses_;
  }

  /// Indices (into the sequence) of requests containing `item`, in time order.
  [[nodiscard]] const std::vector<std::size_t>& indices_for_item(ItemId item) const;

  /// Human-readable one-line-per-request dump (debugging/tests).
  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t server_count_;
  std::size_t item_count_;
  std::vector<Request> requests_;
  std::vector<std::vector<std::size_t>> per_item_indices_;
  std::size_t total_item_accesses_ = 0;
};

/// Convenience builder used heavily by tests and generators: requests may be
/// appended in any order and are sorted by time on build(); times must still
/// end up unique.
class SequenceBuilder {
 public:
  SequenceBuilder(std::size_t server_count, std::size_t item_count);

  SequenceBuilder& add(ServerId server, Time time, std::vector<ItemId> items);

  /// Sorts, validates and produces the immutable sequence.
  [[nodiscard]] RequestSequence build() &&;

 private:
  std::size_t server_count_;
  std::size_t item_count_;
  std::vector<Request> requests_;
};

}  // namespace dpg
