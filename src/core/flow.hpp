// Flows: the per-item / per-package service sequences the solvers operate on.
//
// A *flow* is the thing that moves through the space-time diagram: either one
// individual item or a package of correlated items.  Its service points are
// the (server, time) pairs of the requests it must satisfy, in time order.
// Every flow implicitly starts at the origin (server 0, time 0) where all
// items are initially stored (Section III-A).
#pragma once

#include <cstddef>
#include <vector>

#include "core/request.hpp"
#include "core/types.hpp"

namespace dpg {

/// The server that initially stores every item (the paper's s_1).
inline constexpr ServerId kOriginServer = 0;

/// One service obligation of a flow.
struct ServicePoint {
  ServerId server = 0;
  Time time = 0.0;
  /// Index of the originating request in the RequestSequence;
  /// kNoRequest for synthetic points.
  std::size_t request_index = kNoRequest;

  static constexpr std::size_t kNoRequest = static_cast<std::size_t>(-1);
};

/// A flow and the number of items travelling together (1 = individual item,
/// 2 = pair package, ...).  The cost-rate multiplier is
/// CostModel::flow_multiplier(group_size).
struct Flow {
  std::vector<ServicePoint> points;  // strictly increasing time, all > 0
  std::size_t group_size = 1;

  [[nodiscard]] std::size_t size() const noexcept { return points.size(); }
  [[nodiscard]] bool empty() const noexcept { return points.empty(); }
};

/// Service points of all requests containing `item`.
[[nodiscard]] Flow make_item_flow(const RequestSequence& sequence, ItemId item);

/// In-place variant: rebuilds `out` (clearing points, keeping capacity) so a
/// reused buffer makes repeated flow construction allocation-free.
void make_item_flow(const RequestSequence& sequence, ItemId item, Flow& out);

/// Service points of all requests containing *both* `a` and `b`
/// (the package flow of Phase 2; group_size = 2).  Walks the rarer item's
/// request index instead of the whole sequence, so the cost is
/// O(min(|d_a|, |d_b|) · log|D|) rather than O(n · |D|).
[[nodiscard]] Flow make_package_flow(const RequestSequence& sequence, ItemId a,
                                     ItemId b);

/// In-place variant of the package flow (same reuse contract as above).
void make_package_flow(const RequestSequence& sequence, ItemId a, ItemId b,
                       Flow& out);

/// Service points of all requests containing every item of `group`
/// (multi-item packing extension; group_size = group.size()).
[[nodiscard]] Flow make_group_flow(const RequestSequence& sequence,
                                   const std::vector<ItemId>& group);

/// Service points of all requests containing *any* item of `group`
/// (the Package_Served baseline ships the whole package to each of them;
/// group_size = group.size()).
[[nodiscard]] Flow make_union_flow(const RequestSequence& sequence,
                                   const std::vector<ItemId>& group);

/// Validates the flow invariants (times strictly increasing and positive,
/// group size >= 1). Throws InvalidArgument.
void validate_flow(const Flow& flow);

}  // namespace dpg
