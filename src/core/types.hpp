// Fundamental identifiers and constants of the caching model.
#pragma once

#include <cstdint>
#include <limits>

namespace dpg {

/// Continuous request/schedule time (the paper uses fractional times such as
/// 0.8, 1.4).  All comparisons in the library treat times as exact values;
/// generators emit times representable without rounding surprises.
using Time = double;

/// Index of a cache server, 0-based dense in [0, m).
/// Server 0 is the origin server s_1 that initially stores every item.
using ServerId = std::uint32_t;

/// Index of a data item, 0-based dense in [0, k).
using ItemId = std::uint32_t;

/// Sentinel "no server".
inline constexpr ServerId kNoServer = std::numeric_limits<ServerId>::max();

/// Sentinel "no item".
inline constexpr ItemId kNoItem = std::numeric_limits<ItemId>::max();

/// Cost value; +infinity encodes "infeasible" per Eq. (1) of the paper.
using Cost = double;
inline constexpr Cost kInfiniteCost = std::numeric_limits<Cost>::infinity();

}  // namespace dpg
