// The homogeneous cost model of the paper (Section III-B, Table II).
//
// Caching costs `mu` per item per time unit on every server; transferring an
// item between any pair of servers costs `lambda`.  Packing g >= 2 correlated
// items discounts both rates by the discount factor `alpha`: a g-item package
// caches at `g*alpha*mu` and transfers at `g*alpha*lambda` (Table II).
// Replication, deletion and packing themselves are free (folded into
// `mu`/`lambda`, Section III-C).
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace dpg {

struct CostModel {
  /// Cache cost per item per time unit (μ). Must be >= 0.
  double mu = 1.0;
  /// Transfer cost per item per hop (λ). Must be >= 0.
  double lambda = 1.0;
  /// Package discount factor (α) in (0, 1].
  double alpha = 0.8;

  /// Validates parameter ranges; throws InvalidArgument on violation.
  void validate() const;

  /// Cost-rate multiplier of a flow of `group_size` items served together:
  /// 1 for an individual item, `group_size * alpha` for a package (Table II).
  [[nodiscard]] double flow_multiplier(std::size_t group_size) const noexcept {
    return group_size <= 1 ? 1.0 : alpha * static_cast<double>(group_size);
  }

  /// Cost of caching one individual item for `duration` time units.
  [[nodiscard]] Cost cache_cost(Time duration) const noexcept {
    return mu * duration;
  }

  /// Cost of one individual-item transfer.
  [[nodiscard]] Cost transfer_cost() const noexcept { return lambda; }

  /// Cost of serving a request for a single item of a package by shipping
  /// the (always available) package: the constant 2αλ of Observation 2.
  [[nodiscard]] Cost package_fetch_cost() const noexcept {
    return 2.0 * alpha * lambda;
  }

  /// The theoretical approximation guarantee of DP_Greedy (Theorem 1).
  [[nodiscard]] double approximation_bound() const noexcept {
    return 2.0 / alpha;
  }

  /// The transfer/cache rate ratio ρ = λ/μ swept in Fig. 12.
  [[nodiscard]] double rho() const noexcept { return lambda / mu; }

  /// Model with the same ρ but rates rescaled so λ + μ = `budget`
  /// (the normalization used for Fig. 12, where λ + μ = 6).
  [[nodiscard]] static CostModel from_rho(double rho, double budget,
                                          double alpha);
};

/// Per-server cache rates and per-pair transfer rates: the heterogeneous
/// generalization the paper classifies as NP-hard (Section III-C).  Only the
/// greedy heuristics accept it; it exists so the experiment harnesses can
/// probe robustness of the homogeneous results.
class HeterogeneousCostModel {
 public:
  /// Uniform initialization (matches CostModel with the same rates).
  HeterogeneousCostModel(std::size_t server_count, double mu, double lambda);

  [[nodiscard]] std::size_t server_count() const noexcept { return mu_.size(); }

  void set_mu(ServerId server, double mu);
  void set_lambda(ServerId from, ServerId to, double lambda);

  [[nodiscard]] double mu(ServerId server) const;
  [[nodiscard]] double lambda(ServerId from, ServerId to) const;

 private:
  std::vector<double> mu_;
  std::vector<double> lambda_;  // row-major server_count x server_count
};

}  // namespace dpg
