// RequestBlock — a bounded CSR slice of a request stream, the unit of work
// the serve pipeline hands from the decode stage to the engine thread.
//
// Same columnar shape as a RequestSequence (servers[], times[], one items
// pool indexed by offsets[]), but sized to a batch and reusable: the decode
// stage fills a block, the engine consumes it via push_batch, and the empty
// block travels back for refilling — steady state allocates nothing once
// the columns reach their working capacity.
//
// Two storage modes, mirroring RequestSequence:
//   * owned  — begin_row/push_item/end_row append into owned vectors (the
//     CSV decode path; end_row canonicalizes exactly like
//     SequenceBuilder::end_request, so rows leave sorted and unique);
//   * viewed — adopt() points the block at external CSR columns without
//     copying (the `.dpt` replay path slices the mmap'ed sequence columns
//     zero-copy; offsets may be absolute into the backing pool).
//
// Invariant either way: every row's item set is sorted and duplicate-free,
// which is what lets OnlineDpGreedyState::push_batch feed rows straight to
// the solver without a canonicalization pass.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "util/error.hpp"

namespace dpg {

class RequestBlock {
 public:
  RequestBlock() = default;

  /// Rows currently in the block.
  [[nodiscard]] std::size_t size() const noexcept {
    return viewed_ ? servers_v_.size() : servers_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Total item accesses across all rows.
  [[nodiscard]] std::size_t total_items() const noexcept {
    if (viewed_) return offsets_v_[size()] - offsets_v_[0];
    return items_pool_.size();
  }

  [[nodiscard]] ServerId server_of(std::size_t i) const noexcept {
    return viewed_ ? servers_v_[i] : servers_[i];
  }
  [[nodiscard]] Time time_of(std::size_t i) const noexcept {
    return viewed_ ? times_v_[i] : times_[i];
  }
  /// Row i's item set — sorted, duplicate-free.
  [[nodiscard]] std::span<const ItemId> items_of(std::size_t i) const noexcept {
    if (viewed_) {
      return {pool_base_ + offsets_v_[i], offsets_v_[i + 1] - offsets_v_[i]};
    }
    return {items_pool_.data() + item_offsets_[i],
            item_offsets_[i + 1] - item_offsets_[i]};
  }

  // --- owned mode (decode stage) -------------------------------------------

  /// Resets to an empty owned block, keeping column capacity for reuse.
  void clear() noexcept {
    viewed_ = false;
    row_open_ = false;
    servers_.clear();
    times_.clear();
    items_pool_.clear();
    item_offsets_.clear();
    servers_v_ = {};
    times_v_ = {};
    offsets_v_ = {};
    pool_base_ = nullptr;
  }

  /// Pre-sizes the owned columns for `rows` requests / `items` accesses.
  void reserve(std::size_t rows, std::size_t items) {
    servers_.reserve(rows);
    times_.reserve(rows);
    item_offsets_.reserve(rows + 1);
    items_pool_.reserve(items);
  }

  /// Streaming append: open a row, push its item ids, close it.  end_row
  /// sorts and deduplicates (the 1–2 item fast paths skip the sort call).
  void begin_row(ServerId server, Time time) {
    require(!viewed_, "RequestBlock: appending to a viewed block");
    require(!row_open_, "RequestBlock: begin_row with a row open");
    if (item_offsets_.empty()) item_offsets_.push_back(0);
    servers_.push_back(server);
    times_.push_back(time);
    row_open_ = true;
  }
  void push_item(ItemId item) {
    require(row_open_, "RequestBlock: push_item without begin_row");
    items_pool_.push_back(item);
  }
  void end_row() {
    require(row_open_, "RequestBlock: end_row without begin_row");
    row_open_ = false;
    const std::size_t begin = item_offsets_.back();
    const std::size_t count = items_pool_.size() - begin;
    if (count == 2) {
      ItemId& a = items_pool_[begin];
      ItemId& b = items_pool_[begin + 1];
      if (a > b) std::swap(a, b);
      if (a == b) items_pool_.pop_back();
    } else if (count > 2) {
      const auto first =
          items_pool_.begin() + static_cast<std::ptrdiff_t>(begin);
      std::sort(first, items_pool_.end());
      items_pool_.erase(std::unique(first, items_pool_.end()),
                        items_pool_.end());
    }
    item_offsets_.push_back(items_pool_.size());
  }

  /// Discards a half-open row (begin_row without end_row), restoring the
  /// block to its state before begin_row.  No-op when no row is open.  This
  /// is how the decode stage drops a row whose server/time parsed but whose
  /// item list turned out malformed, without poisoning the valid prefix.
  void abort_row() noexcept {
    if (!row_open_) return;
    row_open_ = false;
    servers_.pop_back();
    times_.pop_back();
    items_pool_.resize(item_offsets_.back());  // non-empty since begin_row
  }

  /// Convenience for tests and small fixtures (canonicalizes via end_row).
  void append_row(ServerId server, Time time, std::span<const ItemId> items) {
    begin_row(server, time);
    for (const ItemId item : items) push_item(item);
    end_row();
  }

  // --- viewed mode (zero-copy replay) --------------------------------------

  /// Points the block at external CSR columns without copying.  `offsets`
  /// has rows+1 entries and may index anywhere into the pool that `pool`
  /// spans (absolute offsets of an mmap'ed sequence work verbatim).  The
  /// caller keeps the backing storage alive while the block is in flight;
  /// rows must already be sorted and duplicate-free.
  void adopt(std::span<const ServerId> servers, std::span<const Time> times,
             std::span<const std::size_t> offsets,
             std::span<const ItemId> pool) noexcept {
    viewed_ = true;
    row_open_ = false;
    servers_v_ = servers;
    times_v_ = times;
    offsets_v_ = offsets;
    pool_base_ = pool.data();
  }

 private:
  bool viewed_ = false;
  bool row_open_ = false;

  // Owned columns (decode path); capacity survives clear().
  std::vector<ServerId> servers_;
  std::vector<Time> times_;
  std::vector<ItemId> items_pool_;
  std::vector<std::size_t> item_offsets_;  // rows + 1 once any row closed

  // Views (replay path).
  std::span<const ServerId> servers_v_;
  std::span<const Time> times_v_;
  std::span<const std::size_t> offsets_v_;
  const ItemId* pool_base_ = nullptr;
};

/// A chunked request source the pipeline's decode stage drains: fills the
/// given block with up to its chunk of rows, returning false at end of
/// stream (block left empty).  Implementations: CsvBlockReader /
/// SequenceBlockReader in trace/block_reader.hpp.
class BlockSource {
 public:
  virtual ~BlockSource() = default;
  /// Fills `block` (clearing/overwriting previous contents) with the next
  /// chunk.  Returns true if at least one row was produced.  Throws
  /// IoError/FormatError with source provenance on malformed input.
  ///
  /// Must not block indefinitely: run_serve_pipeline's error path joins the
  /// decode thread, which waits for the in-flight next() to return — a
  /// source that parks forever on stream IO (e.g. a FIFO that never
  /// produces data or EOF) turns any engine-side exception into a hang.
  /// Sources over potentially-idle streams should poll with a timeout or
  /// bound their reads.
  virtual bool next(RequestBlock& block) = 0;
};

}  // namespace dpg
