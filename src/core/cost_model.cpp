#include "core/cost_model.hpp"

#include "util/error.hpp"

namespace dpg {

void CostModel::validate() const {
  require(mu >= 0.0, "CostModel: mu must be non-negative");
  require(lambda >= 0.0, "CostModel: lambda must be non-negative");
  require(alpha > 0.0 && alpha <= 1.0, "CostModel: alpha must be in (0, 1]");
}

CostModel CostModel::from_rho(double rho, double budget, double alpha) {
  require(rho > 0.0, "from_rho: rho must be positive");
  require(budget > 0.0, "from_rho: budget must be positive");
  // λ/μ = rho and λ + μ = budget  =>  μ = budget / (1 + rho).
  CostModel model;
  model.mu = budget / (1.0 + rho);
  model.lambda = budget - model.mu;
  model.alpha = alpha;
  model.validate();
  return model;
}

HeterogeneousCostModel::HeterogeneousCostModel(std::size_t server_count,
                                               double mu, double lambda)
    : mu_(server_count, mu), lambda_(server_count * server_count, lambda) {
  require(server_count > 0, "HeterogeneousCostModel: need >= 1 server");
  require(mu >= 0.0 && lambda >= 0.0,
          "HeterogeneousCostModel: rates must be non-negative");
  for (std::size_t s = 0; s < server_count; ++s) {
    lambda_[s * server_count + s] = 0.0;  // no self-transfer cost
  }
}

void HeterogeneousCostModel::set_mu(ServerId server, double mu) {
  require(server < mu_.size(), "set_mu: server out of range");
  require(mu >= 0.0, "set_mu: rate must be non-negative");
  mu_[server] = mu;
}

void HeterogeneousCostModel::set_lambda(ServerId from, ServerId to,
                                        double lambda) {
  require(from < mu_.size() && to < mu_.size(),
          "set_lambda: server out of range");
  require(lambda >= 0.0, "set_lambda: rate must be non-negative");
  lambda_[from * mu_.size() + to] = lambda;
  lambda_[to * mu_.size() + from] = lambda;  // symmetric network
}

double HeterogeneousCostModel::mu(ServerId server) const {
  require(server < mu_.size(), "mu: server out of range");
  return mu_[server];
}

double HeterogeneousCostModel::lambda(ServerId from, ServerId to) const {
  require(from < mu_.size() && to < mu_.size(), "lambda: server out of range");
  return lambda_[from * mu_.size() + to];
}

}  // namespace dpg
