// Interval arithmetic on the time axis.
//
// The cost semantics of the whole model reduce to "union length of hold
// intervals per server" (DESIGN.md §1); this small value type implements
// that union once, for Schedule::total_cache_time, the exhaustive solvers
// and the replay engine.
#pragma once

#include <utility>
#include <vector>

#include "core/types.hpp"

namespace dpg {

/// A multiset of closed intervals with union-length and merge queries.
/// Cheap to build incrementally; normalization is lazy.
class IntervalSet {
 public:
  IntervalSet() = default;

  void add(Time begin, Time end) {
    if (end <= begin) return;  // empty or inverted: carries no length
    intervals_.emplace_back(begin, end);
    normalized_ = intervals_.size() <= 1;
  }

  [[nodiscard]] bool empty() const noexcept { return intervals_.empty(); }
  [[nodiscard]] std::size_t piece_count() const noexcept {
    return intervals_.size();
  }

  /// Total length of the union of all added intervals.
  [[nodiscard]] Time union_length() const;

  /// Length of [lo, hi] not covered by the union.
  [[nodiscard]] Time uncovered_within(Time lo, Time hi) const;

  /// True if `t` lies inside (or on the boundary of) some interval.
  [[nodiscard]] bool covers(Time t) const;

  /// Merged, sorted, disjoint intervals.
  [[nodiscard]] std::vector<std::pair<Time, Time>> merged() const;

  void clear() {
    intervals_.clear();
    normalized_ = true;
  }

 private:
  mutable std::vector<std::pair<Time, Time>> intervals_;
  mutable bool normalized_ = true;

  void normalize() const;
};

}  // namespace dpg
