#include "core/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/interval_set.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dpg {

namespace {

const obs::Counter g_segments_emitted = obs::counter("schedule.segments_emitted");
const obs::Counter g_transfers_emitted = obs::counter("schedule.transfers_emitted");

}  // namespace

void Schedule::add_segment(ServerId server, Time begin, Time end) {
  require(end >= begin, "Schedule: segment end before begin");
  require(begin >= 0.0, "Schedule: negative segment time");
  if (end == begin) return;  // zero-length segments carry no information
  g_segments_emitted.add();
  segments_.push_back(CacheSegment{server, begin, end});
}

void Schedule::add_transfer(ServerId from, ServerId to, Time time) {
  require(time >= 0.0, "Schedule: negative transfer time");
  require(from != to, "Schedule: transfer to the same server");
  g_transfers_emitted.add();
  transfers_.push_back(TransferEdge{from, to, time});
}

Time Schedule::total_cache_time() const {
  // Union of intervals per server (a server never needs two copies of the
  // same flow, so overlap is free).
  std::map<ServerId, IntervalSet> per_server;
  for (const CacheSegment& seg : segments_) {
    per_server[seg.server].add(seg.begin, seg.end);
  }
  Time total = 0.0;
  for (const auto& [server, intervals] : per_server) {
    total += intervals.union_length();
  }
  return total;
}

Cost Schedule::raw_cost(const CostModel& model) const {
  return model.mu * total_cache_time() +
         model.lambda * static_cast<double>(transfers_.size());
}

Cost Schedule::cost(const CostModel& model) const {
  return model.flow_multiplier(group_size_) * raw_cost(model);
}

namespace {

/// Grounded presence knowledge accumulated during validation.
struct Presence {
  // Per server: grounded intervals and instantaneous presence points.
  std::vector<std::vector<std::pair<Time, Time>>> intervals;
  std::vector<std::vector<Time>> points;

  explicit Presence(std::size_t server_count)
      : intervals(server_count), points(server_count) {}

  [[nodiscard]] bool present(ServerId server, Time t) const {
    if (server >= intervals.size()) return false;
    for (const auto& [b, e] : intervals[server]) {
      if (b <= t && t <= e) return true;
    }
    for (const Time p : points[server]) {
      if (p == t) return true;
    }
    return false;
  }
};

}  // namespace

ValidationResult Schedule::validate(const Flow& flow, ServerId origin) const {
  ServerId max_server = origin;
  for (const CacheSegment& s : segments_) max_server = std::max(max_server, s.server);
  for (const TransferEdge& t : transfers_) {
    max_server = std::max({max_server, t.from, t.to});
  }
  for (const ServicePoint& p : flow.points) max_server = std::max(max_server, p.server);

  Presence presence(static_cast<std::size_t>(max_server) + 1);
  presence.points[origin].push_back(0.0);

  // Ground segments and transfers by a fixpoint sweep: keep admitting events
  // whose prerequisite presence already holds.  Chains at equal timestamps
  // (transfer -> segment start -> transfer) resolve across iterations.
  std::vector<bool> segment_done(segments_.size(), false);
  std::vector<bool> transfer_done(transfers_.size(), false);
  bool progress = true;
  std::size_t remaining = segments_.size() + transfers_.size();
  while (progress && remaining > 0) {
    progress = false;
    for (std::size_t i = 0; i < transfers_.size(); ++i) {
      if (transfer_done[i]) continue;
      const TransferEdge& t = transfers_[i];
      if (presence.present(t.from, t.time)) {
        presence.points[t.to].push_back(t.time);
        transfer_done[i] = true;
        progress = true;
        --remaining;
      }
    }
    for (std::size_t i = 0; i < segments_.size(); ++i) {
      if (segment_done[i]) continue;
      const CacheSegment& s = segments_[i];
      if (presence.present(s.server, s.begin)) {
        presence.intervals[s.server].emplace_back(s.begin, s.end);
        segment_done[i] = true;
        progress = true;
        --remaining;
      }
    }
  }

  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (!segment_done[i]) {
      return {false, "ungrounded cache segment at server " +
                         std::to_string(segments_[i].server) + " starting t=" +
                         format_fixed(segments_[i].begin, 3)};
    }
  }
  for (std::size_t i = 0; i < transfers_.size(); ++i) {
    if (!transfer_done[i]) {
      return {false, "ungrounded transfer " + std::to_string(transfers_[i].from) +
                         "->" + std::to_string(transfers_[i].to) + " at t=" +
                         format_fixed(transfers_[i].time, 3)};
    }
  }
  for (const ServicePoint& p : flow.points) {
    if (!presence.present(p.server, p.time)) {
      return {false, "service point at server " + std::to_string(p.server) +
                         " t=" + format_fixed(p.time, 3) + " not covered"};
    }
  }
  return {true, ""};
}

void Schedule::append(const Schedule& other) {
  segments_.insert(segments_.end(), other.segments_.begin(),
                   other.segments_.end());
  transfers_.insert(transfers_.end(), other.transfers_.begin(),
                    other.transfers_.end());
}

std::string Schedule::render(std::size_t server_count, double time_scale) const {
  Time horizon = 0.0;
  for (const CacheSegment& s : segments_) horizon = std::max(horizon, s.end);
  for (const TransferEdge& t : transfers_) horizon = std::max(horizon, t.time);
  const auto columns = static_cast<std::size_t>(std::ceil(horizon * time_scale)) + 1;

  std::vector<std::string> lanes(server_count, std::string(columns, ' '));
  const auto col = [time_scale](Time t) {
    return static_cast<std::size_t>(std::llround(t * time_scale));
  };
  for (const CacheSegment& s : segments_) {
    if (s.server >= server_count) continue;
    for (std::size_t c = col(s.begin); c <= col(s.end) && c < columns; ++c) {
      lanes[s.server][c] = '=';
    }
  }
  for (const TransferEdge& t : transfers_) {
    if (t.from < server_count) lanes[t.from][col(t.time)] = '+';
    if (t.to < server_count) lanes[t.to][col(t.time)] = '*';
  }
  std::string out;
  for (std::size_t s = 0; s < server_count; ++s) {
    out += "s" + std::to_string(s) + " |" + lanes[s] + "|\n";
  }
  return out;
}

}  // namespace dpg
