// The pre-scan data structures of Section V (Fig. 8).
//
// For one flow we build, in a single O(m·N) pre-scan pass:
//   * per-server doubly linked lists Q_j of the flow's service nodes,
//   * a time index A[N] over all nodes,
//   * a rolling pLast[m] array of the most recent node on each server,
//     snapshotted into every node's m-size pointer array.
// The service pass then identifies each candidate interval in O(1) per
// server, giving the paper's O(mn^2) time / O(mn) space bounds.
//
// Node 0 is always the implicit origin (server kOriginServer, time 0).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/flow.hpp"
#include "core/types.hpp"

namespace dpg {

class RequestIndex {
 public:
  /// Sentinel for "no node".
  static constexpr std::int32_t kNone = -1;

  /// An empty index; call rebuild() before any query.
  RequestIndex() = default;

  /// Builds the index for `flow` over `server_count` servers.
  RequestIndex(const Flow& flow, std::size_t server_count,
               ServerId origin = kOriginServer);

  /// Re-runs the pre-scan for a new flow, reusing the existing buffer
  /// capacity — no allocation when the new flow is no larger than any
  /// previously indexed one (the SolverWorkspace reuse contract).
  void rebuild(const Flow& flow, std::size_t server_count,
               ServerId origin = kOriginServer);

  /// Number of nodes including the origin node 0.
  [[nodiscard]] std::size_t node_count() const noexcept { return times_.size(); }
  [[nodiscard]] std::size_t server_count() const noexcept { return m_; }

  [[nodiscard]] Time time_of(std::size_t node) const noexcept {
    return times_[node];
  }
  [[nodiscard]] ServerId server_of(std::size_t node) const noexcept {
    return servers_[node];
  }

  /// The flat node columns (for the SoA kernel passes in solver/kernels.hpp).
  [[nodiscard]] std::span<const Time> times() const noexcept { return times_; }
  [[nodiscard]] std::span<const ServerId> servers() const noexcept {
    return servers_;
  }

  /// Most recent node on `server` strictly before `node` (the r_{p(i)} /
  /// pLast snapshot of the paper); kNone if the flow never visited it.
  [[nodiscard]] std::int32_t recent_on_server(std::size_t node,
                                              ServerId server) const noexcept {
    return snapshots_[node * m_ + server];
  }

  /// p(i): most recent node on node i's own server, strictly before i.
  [[nodiscard]] std::int32_t prev_same_server(std::size_t node) const noexcept {
    return recent_on_server(node, server_of(node));
  }

  /// Doubly linked list Q_j navigation: previous/next node on the same server.
  [[nodiscard]] std::int32_t q_prev(std::size_t node) const noexcept {
    return q_prev_[node];
  }
  [[nodiscard]] std::int32_t q_next(std::size_t node) const noexcept {
    return q_next_[node];
  }
  /// Last node of Q_j after the full pre-scan.
  [[nodiscard]] std::int32_t q_tail(ServerId server) const noexcept {
    return q_tail_[server];
  }

  /// The full pLast snapshot of `node` (m entries, one per server): the most
  /// recent node on each server strictly before `node`. These are the
  /// potential start nodes of the intervals that cover the node (Fig. 8).
  [[nodiscard]] std::span<const std::int32_t> snapshot(std::size_t node) const {
    return {snapshots_.data() + node * m_, m_};
  }

 private:
  std::size_t m_ = 0;
  std::vector<Time> times_;
  std::vector<ServerId> servers_;
  std::vector<std::int32_t> snapshots_;  // node-major, m per node
  std::vector<std::int32_t> q_prev_;
  std::vector<std::int32_t> q_next_;
  std::vector<std::int32_t> q_tail_;
  std::vector<std::int32_t> p_last_;  // rolling pre-scan scratch
};

}  // namespace dpg
