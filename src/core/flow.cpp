#include "core/flow.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dpg {

Flow make_item_flow(const RequestSequence& sequence, ItemId item) {
  Flow flow;
  make_item_flow(sequence, item, flow);
  return flow;
}

void make_item_flow(const RequestSequence& sequence, ItemId item, Flow& out) {
  out.group_size = 1;
  out.points.clear();
  for (const std::size_t index : sequence.indices_for_item(item)) {
    const Request& r = sequence[index];
    out.points.push_back(ServicePoint{r.server, r.time, index});
  }
}

Flow make_package_flow(const RequestSequence& sequence, ItemId a, ItemId b) {
  Flow flow;
  make_package_flow(sequence, a, b, flow);
  return flow;
}

void make_package_flow(const RequestSequence& sequence, ItemId a, ItemId b,
                       Flow& out) {
  out.group_size = 2;
  out.points.clear();
  // Requests holding both items are a subset of either item's request list;
  // walk the shorter one (indices are already in time order).
  const ItemId walk =
      sequence.item_frequency(a) <= sequence.item_frequency(b) ? a : b;
  const ItemId other = walk == a ? b : a;
  for (const std::size_t index : sequence.indices_for_item(walk)) {
    const Request& r = sequence[index];
    if (r.contains(other)) {
      out.points.push_back(ServicePoint{r.server, r.time, index});
    }
  }
}

Flow make_group_flow(const RequestSequence& sequence,
                     const std::vector<ItemId>& group) {
  require(!group.empty(), "make_group_flow: empty group");
  Flow flow;
  flow.group_size = group.size();
  if (group.size() == 1) return make_item_flow(sequence, group.front());
  for (std::size_t index = 0; index < sequence.size(); ++index) {
    const Request& r = sequence[index];
    const bool has_all = std::all_of(
        group.begin(), group.end(),
        [&r](ItemId item) { return r.contains(item); });
    if (has_all) flow.points.push_back(ServicePoint{r.server, r.time, index});
  }
  return flow;
}

Flow make_union_flow(const RequestSequence& sequence,
                     const std::vector<ItemId>& group) {
  require(!group.empty(), "make_union_flow: empty group");
  Flow flow;
  flow.group_size = group.size();
  for (std::size_t index = 0; index < sequence.size(); ++index) {
    const Request& r = sequence[index];
    const bool has_any = std::any_of(
        group.begin(), group.end(),
        [&r](ItemId item) { return r.contains(item); });
    if (has_any) flow.points.push_back(ServicePoint{r.server, r.time, index});
  }
  return flow;
}

void validate_flow(const Flow& flow) {
  require(flow.group_size >= 1, "Flow: group_size must be >= 1");
  Time previous = 0.0;
  for (const ServicePoint& point : flow.points) {
    require(point.time > previous,
            "Flow: service times must be strictly increasing and positive");
    previous = point.time;
  }
}

}  // namespace dpg
