#include "core/schedule_export.hpp"

#include <cstdio>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dpg {

std::string schedule_to_csv(const Schedule& schedule) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"kind", "server", "from", "begin", "end"});
  char buffer[32];
  const auto number = [&buffer](Time t) {
    std::snprintf(buffer, sizeof buffer, "%.17g", t);
    return std::string(buffer);
  };
  for (const CacheSegment& seg : schedule.segments()) {
    writer.write_row({"cache", std::to_string(seg.server), "",
                      number(seg.begin), number(seg.end)});
  }
  for (const TransferEdge& t : schedule.transfers()) {
    writer.write_row({"transfer", std::to_string(t.to),
                      std::to_string(t.from), number(t.time), number(t.time)});
  }
  return out.str();
}

Schedule schedule_from_csv(const std::string& text, std::size_t group_size) {
  const CsvTable table = parse_csv(text);
  const std::size_t kind_col = table.column_index("kind");
  const std::size_t server_col = table.column_index("server");
  const std::size_t from_col = table.column_index("from");
  const std::size_t begin_col = table.column_index("begin");
  const std::size_t end_col = table.column_index("end");

  Schedule schedule(group_size);
  for (const auto& row : table.rows) {
    if (row[kind_col] == "cache") {
      schedule.add_segment(static_cast<ServerId>(parse_size(row[server_col])),
                           parse_double(row[begin_col]),
                           parse_double(row[end_col]));
    } else if (row[kind_col] == "transfer") {
      schedule.add_transfer(static_cast<ServerId>(parse_size(row[from_col])),
                            static_cast<ServerId>(parse_size(row[server_col])),
                            parse_double(row[begin_col]));
    } else {
      throw IoError("schedule CSV: unknown kind '" + row[kind_col] + "'");
    }
  }
  return schedule;
}

std::string schedule_to_dot(const Schedule& schedule, const Flow& flow,
                            const std::string& title) {
  std::ostringstream out;
  out << "digraph \"" << title << "\" {\n"
      << "  rankdir=LR;\n"
      << "  node [shape=point];\n";
  const auto node = [](ServerId s, Time t) {
    return "\"s" + std::to_string(s) + "@" + format_fixed(t, 3) + "\"";
  };
  for (const CacheSegment& seg : schedule.segments()) {
    out << "  " << node(seg.server, seg.begin) << " -> "
        << node(seg.server, seg.end)
        << " [style=bold, arrowhead=none, label=\"cache "
        << format_fixed(seg.end - seg.begin, 3) << "\"];\n";
  }
  for (const TransferEdge& t : schedule.transfers()) {
    out << "  " << node(t.from, t.time) << " -> " << node(t.to, t.time)
        << " [style=dashed, label=\"transfer\"];\n";
  }
  for (const ServicePoint& p : flow.points) {
    out << "  " << node(p.server, p.time)
        << " [shape=circle, width=0.12, label=\"\", color=red];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace dpg
